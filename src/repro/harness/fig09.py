"""Fig. 9 — b-tree search time vs. fanout under remote swap.

A b-tree of N random keys lives in remote-swapped memory; the local
frame pool holds only a fraction of it. Sweeping the number of
children per node traces the paper's U-shape:

* few children -> deep tree -> a fresh page fault per level;
* many children -> nodes span several pages and the in-node binary
  search hops between them;
* the optimum sits where one node fills one page (the paper measured
  ~168 children for their layout; the exact value is implementation-
  dependent, as the paper notes).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.apps.btree import BTree
from repro.config import ClusterConfig
from repro.harness.experiments import ExperimentResult, register
from repro.mem.backing import BackingStore
from repro.model.fastsim import SwapAccessor
from repro.model.latency import LatencyModel
from repro.sim.rng import stream
from repro.swap.remoteswap import RemoteSwap
from repro.units import PAGE_SIZE

__all__ = ["run", "build_keys", "make_tree"]

DEFAULT_FANOUTS = (8, 16, 32, 64, 128, 168, 256, 512, 1024, 2048, 4096)


def build_keys(num_keys: int, seed: int = 0) -> np.ndarray:
    """N distinct random u64 keys, sorted (for bulk load)."""
    rng = stream(seed, "btree_keys")
    keys = rng.choice(
        np.arange(1, num_keys * 8, dtype=np.uint64),
        size=num_keys,
        replace=False,
    )
    keys.sort()
    return keys


def make_tree(accessor, children: int, keys: np.ndarray) -> BTree:
    tree = BTree(accessor, children=children)
    tree.bulk_load(keys)
    return tree


@register("fig09")
def run(
    num_keys: int = 1_000_000,
    searches: int = 1_500,
    fanouts: Sequence[int] = DEFAULT_FANOUTS,
    resident_pages: int = 256,  # 1 MiB of local frames: the tree must
    # dwarf local memory at every fanout, or big nodes win simply by
    # having fewer leaves (partial-residency regime)
    config: Optional[ClusterConfig] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> ExperimentResult:
    num_keys = max(10_000, int(num_keys * scale))
    searches = max(200, int(searches * scale))
    cfg = config if config is not None else ClusterConfig()
    latency = LatencyModel.from_config(cfg)
    keys = build_keys(num_keys, seed)
    rng = stream(seed, "btree_queries")
    queries = rng.integers(1, num_keys * 8, size=searches, dtype=np.uint64)

    result = ExperimentResult(
        exp_id="fig09",
        title="b-tree search time vs. children per node (remote swap)",
        columns=[
            "children",
            "node_bytes",
            "height",
            "us_per_search",
            "faults_per_search",
        ],
        notes=(
            f"{num_keys} keys, {searches} random searches, "
            f"{resident_pages} local page frames"
        ),
    )
    for children in fanouts:
        backing = BackingStore(_arena_bytes(num_keys, children))
        swap = RemoteSwap(cfg.swap, resident_pages=resident_pages)
        accessor = SwapAccessor(latency, backing, swap)
        tree = make_tree(accessor, children, keys)
        # settle the LRU pool before measuring (steady state)
        warm = stream(seed, "fig09_warm", children).integers(
            1, num_keys * 8, size=min(500, searches), dtype=np.uint64
        )
        for q in warm:
            tree.search(int(q))
        accessor.reset_clock()
        faults0 = swap.stats.faults
        for q in queries:
            tree.search(int(q))
        result.rows.append(
            {
                "children": children,
                "node_bytes": tree.node_bytes,
                "height": tree.height,
                "us_per_search": accessor.time_ns / searches / 1e3,
                "faults_per_search": (swap.stats.faults - faults0) / searches,
            }
        )
    return result


def _tree_pages(num_keys: int, children: int) -> int:
    node_bytes = 16 + 8 * (2 * children - 1)
    nodes = max(1, num_keys // (children - 1) + num_keys // max(1, (children - 1) ** 2) + 1)
    return max(1, nodes * max(node_bytes, PAGE_SIZE) // PAGE_SIZE)


def _arena_bytes(num_keys: int, children: int) -> int:
    node_bytes = 16 + 8 * (2 * children - 1)
    nodes = num_keys // (children - 1) + num_keys // max(1, (children - 1) ** 2) + 8
    per_node = max(node_bytes, PAGE_SIZE)
    return max(1 << 22, 2 * nodes * per_node)
