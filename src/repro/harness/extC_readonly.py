"""Extension C — the parallel read-only phase (Section IV-B).

The prototype caches remote ranges write-back although coherence is not
maintained for I/O memory; the paper's stated discipline: "when there
is a read-only phase in the application, we can successfully
parallelize it and execute it with several threads, as no coherency is
needed (once the cache contents corresponding to the write phase have
been flushed)."

This experiment executes that discipline on the packet tier: a single
writer populates remote memory, flushes its cache, and then a
read-only phase runs with 1, 2 and 4 threads. The read phase speeds up
with threads (bounded by the client RMC, as in Fig. 7) and every
thread observes the writer's data — which is only sound *because* of
the flush; the driver verifies the data, too.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.cluster import Cluster
from repro.cluster.malloc import Placement
from repro.config import ClusterConfig, NetworkConfig
from repro.harness.experiments import ExperimentResult, register
from repro.sim.rng import stream
from repro.units import PAGE_SIZE, mib

__all__ = ["run"]


@register("extC")
def run(
    items: int = 600,
    config: Optional[ClusterConfig] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> ExperimentResult:
    items = max(100, int(items * scale))
    # items are split across threads; keep it divisible by 4
    items -= items % 4
    base_cfg = config if config is not None else ClusterConfig()

    result = ExperimentResult(
        exp_id="extC",
        title="single-writer phase, flush, then parallel read-only phase",
        columns=[
            "readers",
            "write_phase_ms",
            "flush_ms",
            "read_phase_ms",
            "read_speedup",
        ],
        notes=(
            f"{items} 64B items in remote memory; writer is always one "
            "core (coherence is not maintained for the RMC range)"
        ),
    )

    baseline_read_ms = None
    for readers in (1, 2, 4):
        cluster = Cluster(
            ClusterConfig(
                network=NetworkConfig(topology="line", dims=(2, 1)),
                node=base_cfg.node,
                rmc=base_cfg.rmc,
                swap=base_cfg.swap,
            )
        )
        sim = cluster.sim
        app = cluster.session(1)
        app.borrow_remote(2, mib(16))
        ptr = app.malloc(mib(8), Placement.REMOTE)
        rng = stream(seed, "extC", readers)
        slots = rng.permutation(items)

        # --- write phase: one core, cached (write-back) ----------------
        t0 = sim.now
        for i in range(items):
            app.write_u64(ptr + i * PAGE_SIZE, i * 3 + 1, core=0)
        write_ms = (sim.now - t0) / 1e6

        # --- flush: make the writes visible to the other cores ----------
        t0 = sim.now
        sim.run_process(app.g_flush(core=0))
        flush_ms = (sim.now - t0) / 1e6

        # --- read-only phase: `readers` cores, uncontended correctness --
        seen: dict[int, int] = {}

        def reader(tid: int, my_slots) -> object:
            for s in my_slots:
                raw = yield from app.g_read(
                    ptr + int(s) * PAGE_SIZE, 8, core=tid, cached=True
                )
                seen[int(s)] = int.from_bytes(raw, "little")

        t0 = sim.now
        share = items // readers
        procs = [
            sim.process(reader(t, slots[t * share : (t + 1) * share]))
            for t in range(readers)
        ]
        sim.run()
        for p in procs:
            if not p.ok:  # pragma: no cover
                raise p.value
        read_ms = (sim.now - t0) / 1e6

        # every thread saw the writer's values (sound thanks to the flush)
        assert seen == {i: i * 3 + 1 for i in range(items)}

        if baseline_read_ms is None:
            baseline_read_ms = read_ms
        result.rows.append(
            {
                "readers": readers,
                "write_phase_ms": write_ms,
                "flush_ms": flush_ms,
                "read_phase_ms": read_ms,
                "read_speedup": baseline_read_ms / read_ms,
            }
        )
    return result
