"""Extension B — the Section II related-work comparison, executed.

The paper surveys five ways to get more memory than the node owns:
disk swap, remote swap, an OS-mediated memory server (Violin), flash
as slow RAM, and memory compression — and argues its hardware path
beats them all for locality-poor, memory-hungry applications. This
experiment lines every approach up on the same random-access workload
(the canneal-like worst case) and the same footprint/local-memory
ratio, so the survey becomes a measured table.
"""

from __future__ import annotations

from typing import Optional

from repro.config import ClusterConfig
from repro.harness.experiments import ExperimentResult, register
from repro.mem.backing import BackingStore
from repro.model.fastsim import (
    LocalMemAccessor,
    RemoteMemAccessor,
    SwapAccessor,
)
from repro.model.latency import LatencyModel
from repro.sim.rng import stream
from repro.swap.alternatives import (
    CompressedMemory,
    FlashSwap,
    OSMemoryServer,
)
from repro.swap.diskswap import DiskSwap
from repro.swap.remoteswap import RemoteSwap
from repro.units import PAGE_SIZE, mib

__all__ = ["run"]


@register("extB")
def run(
    local_memory_bytes: int = mib(16),
    footprint_factor: float = 4.0,
    accesses: int = 20_000,
    write_fraction: float = 0.3,
    config: Optional[ClusterConfig] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> ExperimentResult:
    accesses = max(2_000, int(accesses * scale))
    cfg = config if config is not None else ClusterConfig()
    latency = LatencyModel.from_config(cfg)
    footprint = int(local_memory_bytes * footprint_factor)
    resident = local_memory_bytes // cfg.swap.page_bytes

    rng = stream(seed, "extB")
    addrs = rng.integers(0, footprint // PAGE_SIZE, size=accesses) * PAGE_SIZE
    writes = rng.random(accesses) < write_fraction

    def measure(accessor) -> float:
        for a, w in zip(addrs, writes):
            if w:
                accessor.write(int(a), b"\x00" * 8)
            else:
                accessor.read(int(a), 8)
        return accessor.time_ns / accesses

    systems = [
        ("local DRAM (reference)",
         LocalMemAccessor(latency, BackingStore(footprint))),
        ("remote memory (this paper)",
         RemoteMemAccessor(latency, BackingStore(footprint), hops=1)),
        ("remote swap",
         SwapAccessor(latency, BackingStore(footprint),
                      RemoteSwap(cfg.swap, resident))),
        ("disk swap",
         SwapAccessor(latency, BackingStore(footprint),
                      DiskSwap(cfg.swap, resident))),
        ("flash swap",
         SwapAccessor(latency, BackingStore(footprint),
                      FlashSwap(cfg.swap, resident))),
        ("memory compression",
         SwapAccessor(latency, BackingStore(footprint),
                      CompressedMemory(cfg.swap, dram_pages=resident))),
        ("OS memory server",
         SwapAccessor(latency, BackingStore(footprint),
                      OSMemoryServer())),
    ]

    result = ExperimentResult(
        exp_id="extB",
        title="every Section II memory-expansion approach, same workload",
        columns=["approach", "ns_per_access", "vs_local", "vs_this_paper"],
        notes=(
            f"{accesses} random 8B accesses ({write_fraction:.0%} writes), "
            f"footprint {footprint >> 20} MiB = {footprint_factor:g}x local "
            f"memory"
        ),
    )
    times = {name: measure(acc) for name, acc in systems}
    local = times["local DRAM (reference)"]
    ours = times["remote memory (this paper)"]
    for name, _ in systems:
        result.rows.append(
            {
                "approach": name,
                "ns_per_access": times[name],
                "vs_local": times[name] / local,
                "vs_this_paper": times[name] / ours,
            }
        )
    return result
