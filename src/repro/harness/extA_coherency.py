"""Extension A — the title claim, quantified.

Not a numbered figure in the paper, but the experiment its
Introduction argues from: grow the memory available to a single-node
application by adding donor nodes, and compare the coherency overhead
of

* the paper's **non-coherent regions** (no inter-node protocol),
* **snoopy aggregation** (Aqua-chip style broadcast),
* **directory aggregation** (Numascale-style home-node filtering),

all on the identical fabric and DRAM constants. The paper's design
keeps per-access cost flat as nodes join; snoopy aggregation degrades
with the cluster diameter and floods the fabric with probes; a
directory stays flat-ish but pays a permanent indirection tax.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.aggregation.coherent import (
    AggregationProtocol,
    CoherentAggregationModel,
    CoherentDSMAccessor,
)
from repro.config import ClusterConfig, NetworkConfig
from repro.harness.experiments import ExperimentResult, register
from repro.mem.backing import BackingStore
from repro.model.latency import LatencyModel
from repro.noc.topology import Topology
from repro.sim.rng import stream
from repro.units import PAGE_SIZE, mib

__all__ = ["run"]

_MESH_FOR_NODES = {2: (2, 1), 4: (2, 2), 8: (4, 2), 16: (4, 4)}


@register("extA")
def run(
    node_counts: Sequence[int] = (2, 4, 8, 16),
    accesses: int = 30_000,
    footprint_per_node: int = mib(16),
    write_fraction: float = 0.3,
    config: Optional[ClusterConfig] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> ExperimentResult:
    accesses = max(2_000, int(accesses * scale))
    cfg = config if config is not None else ClusterConfig()
    latency = LatencyModel.from_config(cfg)

    result = ExperimentResult(
        exp_id="extA",
        title="coherency overhead vs. memory-donor count (single-node app)",
        columns=[
            "nodes",
            "memory_MiB",
            "noncoherent_ns",
            "snoopy_ns",
            "directory_ns",
            "snoopy_probes_per_miss",
            "snoopy_coherence_share",
        ],
        notes=(
            f"{accesses} random accesses ({write_fraction:.0%} writes) over "
            "memory pooled from N nodes; identical fabric for all designs"
        ),
    )

    for nodes in node_counts:
        dims = _MESH_FOR_NODES.get(nodes, (nodes, 1))
        topo = Topology.build(
            NetworkConfig(topology="mesh" if nodes > 2 else "line", dims=dims)
        )
        hops = [topo.hops(1, n) for n in range(2, nodes + 1)]
        model = CoherentAggregationModel(
            latency=latency,
            nodes=nodes,
            max_hops=max(hops),
            mean_hops=float(np.mean(hops)),
        )
        footprint = footprint_per_node * max(1, nodes - 1)
        rng = stream(seed, "extA", nodes)
        addrs = rng.integers(0, footprint // PAGE_SIZE, size=accesses) * PAGE_SIZE
        writes = rng.random(accesses) < write_fraction

        times = {}
        probes = {}
        shares = {}
        for protocol in AggregationProtocol:
            acc = CoherentDSMAccessor(
                latency,
                BackingStore(footprint),
                model,
                protocol,
                mem_hops=max(1, round(np.mean(hops))),
            )
            for a, w in zip(addrs, writes):
                if w:
                    acc.write(int(a), b"\x00" * 8)
                else:
                    acc.read(int(a), 8)
            times[protocol] = acc.time_ns / accesses
            misses = acc.accesses  # ~ all miss (random, page-spread)
            probes[protocol] = acc.probe_messages / max(1, misses)
            shares[protocol] = acc.coherence_fraction

        result.rows.append(
            {
                "nodes": nodes,
                "memory_MiB": footprint >> 20,
                "noncoherent_ns": times[AggregationProtocol.NONE],
                "snoopy_ns": times[AggregationProtocol.SNOOPY],
                "directory_ns": times[AggregationProtocol.DIRECTORY],
                "snoopy_probes_per_miss": probes[AggregationProtocol.SNOOPY],
                "snoopy_coherence_share": shares[AggregationProtocol.SNOOPY],
            }
        )
    return result
