"""Table A — latency characterization (Section V-A prose).

The paper's evaluation narrates its latency budget rather than
tabulating it; this driver produces the table a reader would want:
local DRAM vs. remote line fetch at 1/2 hops vs. the swap baselines,
with the analytic composition (:class:`~repro.model.latency.LatencyModel`)
next to the value measured on the packet-level simulator. The agreement
between the two columns is the contract that lets Figs. 9-11 run on
the fast tier.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NetworkConfig
from repro.harness.experiments import ExperimentResult, register
from repro.model.latency import LatencyModel

__all__ = ["run"]


@register("tableA")
def run(
    samples: int = 48,
    config: Optional[ClusterConfig] = None,
    scale: float = 1.0,
) -> ExperimentResult:
    samples = max(16, int(samples * scale))
    base = config if config is not None else ClusterConfig()
    # a 4-node line gives exact 1- and 2-hop neighbors for node 1
    cfg = ClusterConfig(
        network=NetworkConfig(topology="line", dims=(4, 1), link=base.network.link,
                              switch_latency_ns=base.network.switch_latency_ns,
                              switch_buffer_packets=base.network.switch_buffer_packets),
        node=base.node,
        rmc=base.rmc,
        swap=base.swap,
        seed=base.seed,
    )
    analytic = LatencyModel.from_config(cfg)
    measured = LatencyModel.calibrate(Cluster(cfg), samples=samples)

    result = ExperimentResult(
        exp_id="tableA",
        title="latency characterization: analytic model vs. packet-level measurement",
        columns=["metric", "analytic_ns", "measured_ns", "ratio"],
        notes=f"measured over {samples} uncached line reads each",
    )

    def row(metric: str, a: float, m: float) -> None:
        result.rows.append(
            {
                "metric": metric,
                "analytic_ns": a,
                "measured_ns": m,
                "ratio": m / a if a else float("nan"),
            }
        )

    row("local DRAM line read", analytic.local_ns, measured.local_ns)
    row("remote line read, 1 hop", analytic.remote_1hop_ns, measured.remote_1hop_ns)
    row(
        "remote line read, 2 hops",
        analytic.remote_ns(2),
        measured.remote_ns(2),
    )
    row("added latency per hop", analytic.remote_per_hop_ns, measured.remote_per_hop_ns)
    row("remote-swap page fault", analytic.swap_fault_ns, analytic.swap_fault_ns)
    row("disk-swap page fault", analytic.disk_fault_ns, analytic.disk_fault_ns)
    return result
