"""Extension D — the Section VI database study, executed.

"We aim to stress our prototype with a real full implementation, store
indexes or the entire database in memory, and then study the execution
time for different queries."

This driver does exactly that with :class:`repro.apps.database.MiniDB`:
a fully-indexed in-memory table under local memory, the remote-memory
prototype, and remote swap, with per-query-class timings — the table
the paper's future-work paragraph asks for.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.database import MiniDB
from repro.config import ClusterConfig
from repro.harness.experiments import ExperimentResult, register
from repro.mem.backing import BackingStore
from repro.model.fastsim import (
    LocalMemAccessor,
    RemoteMemAccessor,
    SwapAccessor,
)
from repro.model.latency import LatencyModel
from repro.swap.remoteswap import RemoteSwap
from repro.sim.rng import stream
from repro.units import mib

__all__ = ["run"]


@register("extD")
def run(
    num_rows: int = 40_000,
    point_queries: int = 1_500,
    range_queries: int = 150,
    range_span: int = 128,
    updates: int = 500,
    resident_pages: int = 512,
    hops: int = 1,
    config: Optional[ClusterConfig] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> ExperimentResult:
    num_rows = max(5_000, int(num_rows * scale))
    point_queries = max(200, int(point_queries * scale))
    cfg = config if config is not None else ClusterConfig()
    latency = LatencyModel.from_config(cfg)

    result = ExperimentResult(
        exp_id="extD",
        title="in-memory database: query times by memory system",
        columns=[
            "memory_system",
            "point_us",
            "range128_us",
            "update_us",
            "scan_ms",
        ],
        notes=(
            f"{num_rows} rows x 128B, hash + b-tree indexes in the same "
            f"memory; swap keeps {resident_pages} local pages"
        ),
    )

    rng = stream(seed, "extD")
    point_keys = rng.integers(1, num_rows + 1, size=point_queries)
    range_los = rng.integers(1, max(2, num_rows - range_span), size=range_queries)
    update_keys = rng.integers(1, num_rows + 1, size=updates)
    payload = b"\x5A" * 16

    capacity = max(mib(64), num_rows * 128 * 4)
    systems = [
        ("local DRAM",
         lambda: LocalMemAccessor(latency, BackingStore(capacity))),
        ("remote memory (this paper)",
         lambda: RemoteMemAccessor(latency, BackingStore(capacity),
                                   hops=hops)),
        ("remote swap",
         lambda: SwapAccessor(latency, BackingStore(capacity),
                              RemoteSwap(cfg.swap, resident_pages))),
    ]

    for name, make in systems:
        acc = make()
        db = MiniDB(acc, num_rows=num_rows, seed=seed)

        # steady state for the swap baseline
        for k in point_keys[:200]:
            db.point_select(int(k))

        t0 = acc.time_ns
        for k in point_keys:
            db.point_select(int(k))
        point_us = (acc.time_ns - t0) / point_queries / 1e3

        t0 = acc.time_ns
        for lo in range_los:
            db.range_select(int(lo), int(lo) + range_span)
        range_us = (acc.time_ns - t0) / range_queries / 1e3

        t0 = acc.time_ns
        for k in update_keys:
            db.update(int(k), payload)
        update_us = (acc.time_ns - t0) / updates / 1e3

        t0 = acc.time_ns
        db.full_scan()
        scan_ms = (acc.time_ns - t0) / 1e6

        result.rows.append(
            {
                "memory_system": name,
                "point_us": point_us,
                "range128_us": range_us,
                "update_us": update_us,
                "scan_ms": scan_ms,
            }
        )
    return result
