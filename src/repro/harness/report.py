"""Markdown report generation.

``write_report`` runs a set of experiments and renders one
self-contained markdown document — the machinery behind refreshing
EXPERIMENTS.md after a model change, and a convenient artifact to
attach to regression runs::

    from repro.harness.report import write_report
    write_report("report.md", experiments=["fig06", "tableA"], scale=0.5)
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Sequence

from repro.harness.experiments import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)

__all__ = ["render_markdown", "write_report"]


def _result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a markdown section with a pipe table."""
    lines = [f"## {result.exp_id} — {result.title}", ""]
    header = " | ".join(result.columns)
    sep = " | ".join("---" for _ in result.columns)
    lines.append(f"| {header} |")
    lines.append(f"| {sep} |")
    for row in result.rows:
        cells = " | ".join(
            ExperimentResult._fmt(row.get(col)) for col in result.columns
        )
        lines.append(f"| {cells} |")
    if result.notes:
        lines.append("")
        lines.append(f"*{result.notes}*")
    lines.append("")
    return "\n".join(lines)


def render_markdown(
    results: Sequence[ExperimentResult],
    title: str = "Reproduction report",
    preamble: str = "",
) -> str:
    """Render experiment results into one markdown document."""
    parts = [f"# {title}", ""]
    if preamble:
        parts += [preamble, ""]
    parts += [_result_to_markdown(r) for r in results]
    return "\n".join(parts)


def write_report(
    path: str | Path,
    experiments: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 0,
    title: str = "Reproduction report",
) -> Path:
    """Run *experiments* (default: all) and write the markdown report.

    Returns the written path. Each experiment's wall-clock time is
    recorded in the document so regressions in simulator performance
    are visible alongside regressions in results.
    """
    targets = list(experiments) if experiments else available_experiments()
    results = []
    timings = []
    for exp_id in targets:
        kwargs = {"scale": scale}
        if exp_id != "tableA":
            kwargs["seed"] = seed
        t0 = time.time()  # simcheck: disable=SIM006 -- host wall clock, not sim time
        results.append(run_experiment(exp_id, **kwargs))
        timings.append((exp_id, time.time() - t0))  # simcheck: disable=SIM006 -- host wall clock
    preamble_lines = [
        f"Generated with scale={scale:g}, seed={seed}.",
        "",
        "| experiment | wall time (s) |",
        "| --- | --- |",
    ]
    preamble_lines += [f"| {e} | {t:.1f} |" for e, t in timings]
    doc = render_markdown(results, title=title,
                          preamble="\n".join(preamble_lines))
    out = Path(path)
    out.write_text(doc, encoding="utf-8")
    return out
