"""Extension E — cluster scalability of concurrent remote-memory use.

The abstract promises: "Real executions show the feasibility of our
prototype and its scalability." Figs. 6-8 probe single client/server
pairs; this experiment measures the property that makes the design
scale: because every memory region is an independent coherency domain,
**disjoint borrower/donor pairs share nothing** — aggregate remote
bandwidth grows linearly with the number of concurrently active pairs
on the 4x4 mesh (until pairs start sharing fabric links).
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.malloc import Placement
from repro.config import ClusterConfig
from repro.harness.experiments import ExperimentResult, register
from repro.noc.fabricstats import collect
from repro.sim.rng import stream
from repro.units import CACHE_LINE, PAGE_SIZE, mib

__all__ = ["run"]

#: disjoint neighbor pairs on the 4x4 mesh (client, donor); chosen so
#: each pair's 1-hop link is private to it
_PAIRS: tuple[tuple[int, int], ...] = (
    (1, 2), (3, 4), (5, 6), (7, 8), (9, 10), (11, 12), (13, 14), (15, 16),
)


@register("extE")
def run(
    pair_counts: Sequence[int] = (1, 2, 4, 8),
    accesses_per_client: int = 800,
    config: Optional[ClusterConfig] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> ExperimentResult:
    accesses_per_client = max(100, int(accesses_per_client * scale))
    cfg = config if config is not None else ClusterConfig()

    result = ExperimentResult(
        exp_id="extE",
        title="aggregate remote bandwidth vs. concurrent borrower/donor pairs",
        columns=[
            "pairs",
            "total_accesses",
            "elapsed_ms",
            "aggregate_mops",
            "scaling_efficiency",
            "max_link_util",
        ],
        notes=(
            f"{accesses_per_client} uncached 64B reads per client, one "
            "thread each, disjoint 1-hop pairs on the 4x4 mesh"
        ),
    )

    base_mops = None
    for pairs in pair_counts:
        cluster = Cluster(cfg)
        sim = cluster.sim
        times: list[float] = []

        def client(app, ptr, tid: int) -> Generator:
            rng = stream(seed, "extE", tid)
            offsets = (
                rng.integers(0, mib(8) // PAGE_SIZE, size=accesses_per_client)
                * PAGE_SIZE
            )
            for off in offsets:
                yield from app.g_read(
                    ptr + int(off), CACHE_LINE, core=0, cached=False
                )
            times.append(sim.now)

        sessions = []
        for tid, (client_node, donor) in enumerate(_PAIRS[:pairs]):
            app = cluster.session(client_node)
            app.borrow_remote(donor, mib(16))
            ptr = app.malloc(mib(8), Placement.REMOTE)
            # warm translations off the measurement
            for vaddr in range(ptr, ptr + mib(8), PAGE_SIZE):
                app.aspace.translate(vaddr)
            sessions.append((app, ptr))

        start = sim.now
        procs = [
            sim.process(client(app, ptr, tid), name=f"extE.c{tid}")
            for tid, (app, ptr) in enumerate(sessions)
        ]
        sim.run()
        for p in procs:
            if not p.ok:  # pragma: no cover
                raise p.value
        elapsed = max(times) - start
        total = pairs * accesses_per_client
        mops = total / elapsed * 1e3
        if base_mops is None:
            base_mops = mops
        fabric = collect(cluster.network)
        result.rows.append(
            {
                "pairs": pairs,
                "total_accesses": total,
                "elapsed_ms": elapsed / 1e6,
                "aggregate_mops": mops,
                "scaling_efficiency": mops / (base_mops * pairs),
                "max_link_util": fabric.max_utilization,
            }
        )
    return result
