"""Fig. 7 — thread sweep against one and four memory servers.

Left group (one server, one hop): 1, 2 and 4 client threads. The paper
observes 2 threads halving the time but 4 threads *not* — the client
RMC saturates at the request rate of about two threads.

Right group (four servers): 4 threads with the servers 1, 2 and 3 hops
away. Replicating the server does not help (the bottleneck is not the
server), and moving the servers *farther away* slightly *decreases*
the time: the lower request rate relieves the congested client RMC.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.randbench import RandomAccessBenchmark
from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig
from repro.harness.experiments import ExperimentResult, register

__all__ = ["run"]

_CLIENT_NODE = 6  # (1, 1): has >= 4 nodes at distances 1, 2 and 3


@register("fig07")
def run(
    accesses: int = 1200,
    config: Optional[ClusterConfig] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> ExperimentResult:
    accesses = max(100, int(accesses * scale))
    cfg = config if config is not None else ClusterConfig()
    result = ExperimentResult(
        exp_id="fig07",
        title="random benchmark: threads x servers x distance",
        columns=[
            "group",
            "threads",
            "servers",
            "hops",
            "elapsed_ms",
            "speedup_vs_1t",
        ],
        notes=(
            f"{accesses} uncached 64B reads per thread from node "
            f"{_CLIENT_NODE}; elapsed is the slowest thread"
        ),
    )

    def one_run(threads: int, num_servers: int, hops: int) -> float:
        """The paper's setup: a *fixed total* amount of accesses is
        split evenly among the threads."""
        cluster = Cluster(cfg)
        candidates = cluster.network.topology.nodes_at_distance(
            _CLIENT_NODE, hops
        )
        servers = candidates[:num_servers]
        if len(servers) < num_servers:
            raise ValueError(
                f"only {len(servers)} nodes at distance {hops}; "
                f"need {num_servers}"
            )
        bench = RandomAccessBenchmark(cluster, seed=seed)
        rr = bench.run_client(
            client_node=_CLIENT_NODE,
            server_nodes=servers,
            threads=threads,
            accesses_per_thread=accesses // threads,
        )
        return rr.elapsed_ns

    base_1t = one_run(1, 1, 1)
    # left group: one server, varying threads
    for threads in (1, 2, 4):
        elapsed = base_1t if threads == 1 else one_run(threads, 1, 1)
        result.rows.append(
            {
                "group": "1 server",
                "threads": threads,
                "servers": 1,
                "hops": 1,
                "elapsed_ms": elapsed / 1e6,
                "speedup_vs_1t": base_1t / elapsed,
            }
        )
    # right group: four servers, 4 threads, varying distance
    for hops in (1, 2, 3):
        elapsed = one_run(4, 4, hops)
        result.rows.append(
            {
                "group": "4 servers",
                "threads": 4,
                "servers": 4,
                "hops": hops,
                "elapsed_ms": elapsed / 1e6,
                "speedup_vs_1t": base_1t / elapsed,
            }
        )
    return result
