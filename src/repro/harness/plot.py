"""ASCII charts for experiment results.

The paper's figures are bar and line charts; this module renders the
regenerated data the same way, in the terminal, so
``python -m repro run fig10 --plot`` shows the *shape* at a glance —
including log-scale support, which Fig. 10's divergence needs.

Pure string processing over :class:`ExperimentResult` columns; no
plotting dependency.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.harness.experiments import ExperimentResult

__all__ = ["bar_chart", "line_chart", "plot_result"]

_BAR = "█"
_HALF = "▌"


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 50,
    log: bool = False,
) -> str:
    """Horizontal bar chart; one row per (label, value)."""
    if len(labels) != len(values):
        raise ConfigError("labels and values must align")
    if not values:
        raise ConfigError("nothing to plot")
    if any(v < 0 for v in values):
        raise ConfigError("bar charts need non-negative values")
    if log and any(v <= 0 for v in values):
        raise ConfigError("log scale needs strictly positive values")

    def transform(v: float) -> float:
        return math.log10(v) if log else v

    tvals = [transform(v) for v in values]
    lo = min(0.0, min(tvals)) if not log else min(tvals)
    hi = max(tvals)
    span = (hi - lo) or 1.0
    label_w = max(len(str(lbl)) for lbl in labels)
    lines = []
    if title:
        lines.append(title + (" [log]" if log else ""))
    for lbl, v, tv in zip(labels, values, tvals):
        frac = (tv - lo) / span
        cells = frac * width
        bar = _BAR * int(cells)
        if cells - int(cells) >= 0.5:
            bar += _HALF
        lines.append(f"{str(lbl):>{label_w}} | {bar} {_fmt(v)}")
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series gets a marker (``*``, ``o``, ``+``, ``x``...); the grid
    is linear in x and linear or log10 in y.
    """
    if not series:
        raise ConfigError("need at least one series")
    markers = "*o+x#@%&"
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigError(f"series {name!r} length != x length")
    all_y = [y for ys in series.values() for y in ys]
    if log_y and any(y <= 0 for y in all_y):
        raise ConfigError("log scale needs strictly positive values")

    def ty(v: float) -> float:
        return math.log10(v) if log_y else v

    y_lo, y_hi = min(map(ty, all_y)), max(map(ty, all_y))
    y_span = (y_hi - y_lo) or 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), markers):
        for x, y in zip(xs, ys):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title + (" [log y]" if log_y else ""))
    top_label = _fmt(10**y_hi if log_y else y_hi)
    bot_label = _fmt(10**y_lo if log_y else y_lo)
    label_w = max(len(top_label), len(bot_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{top_label:>{label_w}} "
        elif i == height - 1:
            prefix = f"{bot_label:>{label_w}} "
        else:
            prefix = " " * (label_w + 1)
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * (label_w + 1) + "+" + "-" * width)
    lines.append(
        " " * (label_w + 2) + f"{_fmt(x_lo)}" + " " * max(
            1, width - len(_fmt(x_lo)) - len(_fmt(x_hi))
        ) + f"{_fmt(x_hi)}"
    )
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)


#: per-experiment plotting recipes: (x column, y columns, log_y)
_RECIPES: dict[str, tuple[Optional[str], list[str], bool]] = {
    "fig06": ("hops", ["ns_per_access"], False),
    "fig07": (None, ["elapsed_ms"], False),
    "fig08": (None, ["control_ns_per_access"], False),
    "fig09": ("children", ["us_per_search"], False),
    "fig10": ("keys", ["remote_us_per_search", "swap_us_per_search"], True),
    "fig11": (None, ["remote_over_local", "swap_over_local"], True),
    "tableA": (None, ["measured_ns"], True),
    "extA": ("nodes", ["noncoherent_ns", "snoopy_ns", "directory_ns"], False),
    "extB": (None, ["ns_per_access"], True),
    "extC": ("readers", ["read_speedup"], False),
    "extD": (None, ["point_us"], True),
    "extE": ("pairs", ["aggregate_mops"], False),
}


def plot_result(result: ExperimentResult, width: int = 56) -> str:
    """Best-effort chart for a known experiment id.

    Numeric-x experiments plot as line charts; categorical ones as bar
    charts (one bar per row, labelled by the first column).
    """
    recipe = _RECIPES.get(result.exp_id)
    if recipe is None:
        raise ConfigError(f"no plot recipe for {result.exp_id!r}")
    x_col, y_cols, log = recipe
    if x_col is not None:
        xs = [float(v) for v in result.column(x_col)]
        series = {c: [float(v) for v in result.column(c)] for c in y_cols}
        return line_chart(
            xs, series, title=result.title, width=width, log_y=log
        )
    labels = [
        " ".join(str(row[c]) for c in result.columns[: min(3, len(result.columns) - 1)]
                 if not isinstance(row[c], float))
        or str(i)
        for i, row in enumerate(result.rows)
    ]
    # single-metric bar chart per y column, stacked vertically
    charts = [
        bar_chart(
            labels,
            [float(v) for v in result.column(col)],
            title=f"{result.title} — {col}",
            width=width,
            log=log,
        )
        for col in y_cols
    ]
    return "\n\n".join(charts)
