"""Command-line interface for the experiment harness.

Usage::

    python -m repro list
    python -m repro run fig06 [--scale 1.0] [--seed 0]
    python -m repro run all   [--scale 0.5]
    python -m repro latency               # print Table A only

Each run prints the regenerated rows in the paper's terms. ``--scale``
multiplies workload sizes (1.0 = the quick defaults; raise it to
approach paper scale at the cost of wall-clock time).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.harness.experiments import (
    available_experiments,
    run_experiment,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the evaluation of 'Getting Rid of Coherency "
            "Overhead for Memory-Hungry Applications' (CLUSTER 2010)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. fig06, or 'all'")
    run.add_argument("--scale", type=float, default=1.0,
                     help="workload scale factor (default 1.0)")
    run.add_argument("--seed", type=int, default=0,
                     help="root random seed (default 0)")
    run.add_argument("--plot", action="store_true",
                     help="also render an ASCII chart of the result")

    sub.add_parser("latency", help="print the latency characterization table")
    return parser


def _run_one(exp_id: str, scale: float, seed: int, plot: bool = False) -> None:
    kwargs = {"scale": scale}
    if exp_id != "tableA":
        kwargs["seed"] = seed
    t0 = time.time()  # simcheck: disable=SIM006 -- host wall clock, not sim time
    result = run_experiment(exp_id, **kwargs)
    wall = time.time() - t0  # simcheck: disable=SIM006 -- host wall clock
    print(result.format())
    if plot:
        from repro.harness.plot import plot_result

        try:
            print()
            print(plot_result(result))
        except Exception as exc:  # pragma: no cover - best effort
            print(f"[no plot: {exc}]")
    print(f"[{exp_id} regenerated in {wall:.1f}s wall time]\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for exp in available_experiments():
            print(exp)
        return 0

    if args.command == "latency":
        print(run_experiment("tableA").format())
        return 0

    # command == "run"
    if args.experiment == "all":
        targets = available_experiments()
    else:
        if args.experiment not in available_experiments():
            print(
                f"unknown experiment {args.experiment!r}; "
                f"available: {', '.join(available_experiments())}",
                file=sys.stderr,
            )
            return 2
        targets = [args.experiment]
    for exp_id in targets:
        _run_one(exp_id, args.scale, args.seed, plot=args.plot)
    return 0
