"""Experiment registry and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.errors import ConfigError

__all__ = [
    "ExperimentResult",
    "register",
    "run_experiment",
    "get_experiment",
    "available_experiments",
]


@dataclass
class ExperimentResult:
    """Rows regenerating one table/figure of the paper."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ConfigError(
                f"{self.exp_id} has no column {name!r}; have {self.columns}"
            )
        return [row[name] for row in self.rows]

    def format(self) -> str:
        """Render as an aligned ASCII table (what the bench prints)."""
        cells = [
            [self._fmt(row.get(col)) for col in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [f"== {self.exp_id}: {self.title} ==", header, sep]
        lines += [
            " | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells
        ]
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Serialize for archival / regression comparison."""
        import json

        return json.dumps(
            {
                "exp_id": self.exp_id,
                "title": self.title,
                "columns": self.columns,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
        )

    @staticmethod
    def from_json(text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        import json

        data = json.loads(text)
        return ExperimentResult(
            exp_id=data["exp_id"],
            title=data["title"],
            columns=list(data["columns"]),
            rows=list(data["rows"]),
            notes=data.get("notes", ""),
        )

    @staticmethod
    def _fmt(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            return f"{value:.3g}"
        return str(value)


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(exp_id: str):
    """Class decorator-less registration for experiment drivers."""

    def wrap(fn: Callable[..., ExperimentResult]):
        if exp_id in _REGISTRY:
            raise ConfigError(f"experiment {exp_id!r} registered twice")
        _REGISTRY[exp_id] = fn
        return fn

    return wrap


def get_experiment(exp_id: str) -> Callable[..., ExperimentResult]:
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {exp_id!r}; available: "
            f"{sorted(_REGISTRY)}"
        ) from None


def run_experiment(exp_id: str, **kwargs: Any) -> ExperimentResult:
    """Run one registered experiment driver."""
    return get_experiment(exp_id)(**kwargs)


def available_experiments() -> List[str]:
    return sorted(_REGISTRY)
