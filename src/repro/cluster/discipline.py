"""Runtime checker for the prototype's remote-caching discipline.

Section IV-B: remote ranges are configured write-back cacheable, but
"as coherency is not maintained in I/O memory, we are restricted to use
only serial applications and bind the process to a single core. Note
that when there is a read-only phase in the application, we can
successfully parallelize it ... (once the cache contents corresponding
to the write phase have been flushed)."

That restriction is a *usage contract*, invisible to the hardware — if
an application breaks it, it silently reads stale data. This monitor
makes the contract checkable in simulation: attach it to a node and it
observes every cached remote access and every flush, raising
:class:`~repro.errors.CoherenceError` the moment two cores' cached
views of a remote line could diverge:

* a core reads a remote line another core has written since the last
  flush of the writer's cache;
* a second core writes a remote line while another core's dirty or
  cached copy is still live.

Used by tests and available to applications as a debugging aid (the
analogue of running a real program under a race detector).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CoherenceError
from repro.mem.addressmap import AddressMap

__all__ = ["DisciplineViolation", "RemoteAccessDiscipline"]


@dataclass(frozen=True)
class DisciplineViolation:
    """A record of one (potential) stale-data hazard."""

    line: int
    writer_core: int
    offender_core: int
    kind: str  # "read-after-write" | "write-after-write" | "write-after-read"


@dataclass
class RemoteAccessDiscipline:
    """Tracks per-line writer/reader sets between cache flushes."""

    amap: AddressMap
    local_node: int
    #: raise on violation (True) or just record (False)
    strict: bool = True
    line_bytes: int = 64
    #: line -> core that holds unflushed written state
    _dirty_writer: dict[int, int] = field(default_factory=dict)
    #: line -> set of cores that may hold a cached (clean) copy
    _readers: dict[int, set[int]] = field(default_factory=dict)
    violations: list[DisciplineViolation] = field(default_factory=list)

    # -- event feed ----------------------------------------------------------
    def on_access(self, core: int, paddr: int, size: int, is_write: bool) -> None:
        """Feed one *cached* access to remote memory."""
        if not self.amap.is_remote(paddr, self.local_node):
            return
        first = paddr // self.line_bytes
        last = (paddr + max(1, size) - 1) // self.line_bytes
        for line in range(first, last + 1):
            if is_write:
                self._on_write(core, line)
            else:
                self._on_read(core, line)

    def on_flush(self, core: int) -> None:
        """A core flushed its cache: its dirty state became visible and
        its cached copies are gone."""
        for line in [l for l, w in self._dirty_writer.items() if w == core]:
            del self._dirty_writer[line]
        for readers in self._readers.values():
            readers.discard(core)

    # -- internals ----------------------------------------------------------
    def _on_read(self, core: int, line: int) -> None:
        writer = self._dirty_writer.get(line)
        if writer is not None and writer != core:
            self._violate(line, writer, core, "read-after-write")
        self._readers.setdefault(line, set()).add(core)

    def _on_write(self, core: int, line: int) -> None:
        writer = self._dirty_writer.get(line)
        if writer is not None and writer != core:
            self._violate(line, writer, core, "write-after-write")
        stale_readers = self._readers.get(line, set()) - {core}
        if stale_readers:
            self._violate(
                line, core, min(stale_readers), "write-after-read"
            )
        self._dirty_writer[line] = core

    def _violate(self, line: int, writer: int, offender: int, kind: str) -> None:
        violation = DisciplineViolation(
            line=line, writer_core=writer, offender_core=offender, kind=kind
        )
        self.violations.append(violation)
        if self.strict:
            raise CoherenceError(
                f"remote-caching discipline violated: {kind} on line "
                f"{line:#x} (writer core {writer}, offender core "
                f"{offender}) — remote memory is not coherent; flush "
                "between write and shared-read phases (Section IV-B)"
            )

    @property
    def clean(self) -> bool:
        return not self.violations
