"""The core's memory-issue model.

A core turns physical-address load/store operations into HT packets
routed over the on-board crossbar. The two structural limits the paper
calls out (Section IV-B) live here:

* up to ``local_outstanding`` (8) concurrent requests to local,
  coherent memory;
* only ``remote_outstanding`` (1) concurrent request to the RMC-mapped
  range, because the prototype presents the RMC as an HT *I/O unit* —
  "a new remote memory request cannot be issued before the previous
  one has been completed".

A client-RMC NACK (buffer full) is retried here after the configured
back-off, like the hardware retry of a posted HT transaction.

Functional/timing split for cached accesses: the simulator keeps data
authoritative in the backing stores, so a *cached* write updates the
backing store functionally (zero time) while the *timing* follows the
write-back cache model — write hits cost ``hit_ns`` and dirty lines pay
a memory write only upon eviction, issued as a ``timing_only`` packet
that moves no data. Remote ranges are cacheable in the prototype, but
coherence is not maintained for I/O memory; the workloads honor the
prototype's discipline (single writer, or parallel read-only phases
after an explicit flush).

Batching: multi-line cached/coherent accesses classify the whole span
in one pass (:meth:`Cache.access_span` / the coherence domain's span
operations), charge pure latency arithmetically, and coalesce
contiguous misses into burst packets that every timed component
charges in one event. ``batch=False`` on any accessor forces the
scalar per-line reference path; the two are equivalent in sim time,
stats, and data (enforced by ``tests/cluster/test_core_batch.py``).
Bursts never cross ``burst_align_bytes`` windows, so each burst stays
within one memory controller's slice.
"""

from __future__ import annotations

from typing import Generator, Optional, Protocol

from repro.config import CoreConfig, RMCConfig
from repro.errors import ProtocolError, RemoteAccessError
from repro.ht.crossbar import Crossbar
from repro.ht.packet import (
    Packet,
    PacketType,
    TagAllocator,
    make_burst_read_req,
    make_burst_write_req,
    make_read_req,
    make_write_req,
)
from repro.mem.addressmap import AddressMap
from repro.mem.cache import Cache
from repro.mem.coherence import CoherenceDomain
from repro.sim.engine import Simulator
from repro.sim.resources import Resource, Store
from repro.sim.stats import Counter, Tally

__all__ = ["Core", "FunctionalMemory"]


class FunctionalMemory(Protocol):
    """Zero-time data access across the whole cluster address map.

    Provided by :class:`repro.cluster.cluster.Cluster`; resolves the
    node prefix and reads/writes the owner's backing store directly.
    Used only for the data side of cached accesses — timing always
    comes from the packet path.
    """

    def fn_read(self, paddr: int, size: int) -> bytes: ...
    def fn_write(self, paddr: int, data: bytes) -> None: ...


class Core:
    """One CPU core bound to a node's crossbar."""

    def __init__(
        self,
        sim: Simulator,
        config: CoreConfig,
        rmc_config: RMCConfig,
        amap: AddressMap,
        node_id: int,
        core_id: int,
        crossbar: Crossbar,
        tags: TagAllocator,
        cache: Optional[Cache] = None,
        functional_mem: Optional[FunctionalMemory] = None,
        coherence: Optional["CoherenceDomain"] = None,
        coherence_idx: int = 0,
        burst_align_bytes: int = 0,
    ) -> None:
        self.sim = sim
        self.config = config
        self.rmc_config = rmc_config
        self.amap = amap
        self.node_id = node_id
        self.core_id = core_id
        self.crossbar = crossbar
        self.tags = tags
        self.cache = cache
        self.functional_mem = functional_mem
        self.coherence = coherence
        self.coherence_idx = coherence_idx
        #: burst packets may not cross multiples of this (the memory
        #: interleave granularity / per-socket slice size); 0 = no limit
        self.burst_align_bytes = burst_align_bytes
        #: timing-only writes move no data; zero buffers are reused
        self._zero_payloads: dict[int, bytes] = {}
        self.name = f"n{node_id}c{core_id}"
        self._local_slots = Resource(
            sim, config.local_outstanding, name=f"{self.name}.lslots"
        )
        self._remote_slots = Resource(
            sim, config.remote_outstanding, name=f"{self.name}.rslots"
        )
        self.loads = Counter(f"{self.name}.loads")
        self.stores = Counter(f"{self.name}.stores")
        self.nack_retries = Counter(f"{self.name}.nack_retries")
        self.load_latency_ns = Tally(f"{self.name}.load_latency")

    # -- raw (uncached) operations ---------------------------------------
    def read(self, paddr: int, size: int) -> Generator:
        """Load *size* bytes at physical *paddr*; returns the data."""
        self.loads.add()
        t0 = self.sim.now
        request = make_read_req(
            self.node_id, self.node_id, paddr, size, self.tags.next()
        )
        response = yield from self._issue(request)
        self.load_latency_ns.observe(self.sim.now - t0)
        return response.payload

    def write(self, paddr: int, data: bytes) -> Generator:
        """Store *data* at physical *paddr*; returns once acked."""
        self.stores.add()
        request = make_write_req(
            self.node_id, self.node_id, paddr, data, self.tags.next()
        )
        yield from self._issue(request)
        return None

    # -- cached operations -----------------------------------------------
    def cached_read(self, paddr: int, size: int, batch: bool = True) -> Generator:
        """Load through this core's write-back cache.

        Misses fetch whole lines; dirty evictions write back (timing
        only) before the demand fetch. The returned bytes are always
        the authoritative backing-store contents. ``batch=False``
        forces the scalar per-line reference path (same sim time, same
        stats — enforced by the equivalence tests).
        """
        if self.cache is None or self.functional_mem is None:
            return (yield from self.read(paddr, size))
        self.loads.add()
        yield from self._touch_lines(paddr, size, is_write=False, batch=batch)
        return self.functional_mem.fn_read(self._prefixed(paddr), size)

    def cached_write(self, paddr: int, data: bytes, batch: bool = True) -> Generator:
        """Store through the write-back cache (data lands functionally)."""
        if self.cache is None or self.functional_mem is None:
            return (yield from self.write(paddr, data))
        self.stores.add()
        yield from self._touch_lines(paddr, len(data), is_write=True, batch=batch)
        self.functional_mem.fn_write(self._prefixed(paddr), data)
        return None

    def cached_touch(
        self, paddr: int, size: int, is_write: bool = False, batch: bool = True
    ) -> Generator:
        """Charge a cached access's timing without assembling its data.

        The columnar data plane splits timing from data movement: the
        span's cache classification, miss bursts and write-backs are
        charged here exactly as :meth:`cached_read` /
        :meth:`cached_write` would charge them, while the caller fetches
        (or zero-copy views) the bytes straight from functional memory.
        Counts one load/store, like its data-moving twins.
        """
        if self.cache is None or self.functional_mem is None:
            raise ProtocolError(
                f"{self.name}: cached_touch needs a cache and functional "
                "memory (uncached cores move data with every packet)"
            )
        if is_write:
            self.stores.add()
        else:
            self.loads.add()
        yield from self._touch_lines(paddr, size, is_write=is_write, batch=batch)
        return None

    # -- coherent operations (intra-node shared memory) --------------------
    def coherent_read(self, paddr: int, size: int, batch: bool = True) -> Generator:
        """Load through the node's MESI domain — valid for shared,
        intra-node data only.

        Remote (prefixed) addresses are rejected: the prototype does
        not maintain coherence for I/O memory (Section IV-B), which is
        exactly why multi-writer phases must stay on local memory.
        """
        self._require_coherent(paddr)
        self.loads.add()
        yield from self._coherent_lines(paddr, size, is_write=False, batch=batch)
        return self.functional_mem.fn_read(self._prefixed(paddr), size)

    def coherent_write(self, paddr: int, data: bytes, batch: bool = True) -> Generator:
        """Store through the node's MESI domain (intra-node only)."""
        self._require_coherent(paddr)
        self.stores.add()
        yield from self._coherent_lines(paddr, len(data), is_write=True, batch=batch)
        self.functional_mem.fn_write(self._prefixed(paddr), data)
        return None

    def _require_coherent(self, paddr: int) -> None:
        if self.coherence is None or self.functional_mem is None:
            raise ProtocolError(
                f"{self.name}: core is not attached to a coherence domain"
            )
        if self.amap.node_of(paddr) != 0:
            raise ProtocolError(
                f"{self.name}: coherent access to remote address "
                f"{paddr:#x} — coherency is not maintained for the "
                "RMC-mapped range (Section IV-B)"
            )

    def _coherent_lines(
        self, paddr: int, size: int, is_write: bool, batch: bool = True
    ) -> Generator:
        assert self.cache is not None and self.coherence is not None
        cfg = self.config
        line_bytes = self.cache.config.line_bytes
        first = paddr // line_bytes
        last = (paddr + size - 1) // line_bytes
        count = last - first + 1
        domain = self.coherence
        if not batch or count == 1:
            for line in range(first, last + 1):
                interventions = domain.stats.interventions
                if is_write:
                    hit = domain.write(self.coherence_idx, line)
                else:
                    hit = domain.read(self.coherence_idx, line)
                if hit:
                    yield self.sim.timeout(self.cache.config.hit_ns)
                    continue
                # miss: the snoop broadcast window always applies; data
                # comes cache-to-cache if a peer held it Modified,
                # otherwise from local DRAM
                yield self.sim.timeout(cfg.snoop_ns)
                if domain.stats.interventions > interventions:
                    yield self.sim.timeout(cfg.cache2cache_ns)
                else:
                    yield from self._timing_read(line * line_bytes, line_bytes)
            return
        op = domain.write_span if is_write else domain.read_span
        span = op(self.coherence_idx, first, count)
        # pure latency (hit windows, snoop windows, cache-to-cache
        # transfers) collapses into one event; only memory fetches
        # remain as packet traffic
        latency = (
            span.hits * self.cache.config.hit_ns
            + span.misses * cfg.snoop_ns
            + span.interventions * cfg.cache2cache_ns
        )
        if latency:
            yield self.sim.timeout(latency)
        if span.fetch_lines:
            align = self._align_lines(line_bytes)
            for start, n in self._runs(span.fetch_lines, align):
                yield from self._timing_read_burst(start, n, line_bytes)

    def _timing_read(self, paddr: int, size: int) -> Generator:
        """A read that charges full packet timing; data is discarded
        (the functional copy is fetched separately)."""
        request = make_read_req(
            self.node_id, self.node_id, paddr, size, self.tags.next()
        )
        yield from self._issue(request)

    def flush_cache(self, batch: bool = True) -> Generator:
        """Write back every dirty line (prototype: done before parallel
        read-only phases, Section IV-B). Data is already authoritative
        in the backing store, so flushes are timing-only writes;
        contiguous dirty runs coalesce into burst write-backs."""
        if self.cache is None:
            return None
        line_bytes = self.cache.config.line_bytes
        dirty = self.cache.flush()
        if not batch:
            for line in dirty:
                yield from self._timing_write(line * line_bytes, line_bytes)
            return None
        align = self._align_lines(line_bytes)
        for start, n in self._runs(dirty, align):
            yield from self._timing_write_burst(start, n, line_bytes)
        return None

    # -- internals ----------------------------------------------------------
    def _prefixed(self, paddr: int) -> int:
        """Qualify a local (prefix-0) address with this node's id for
        the cluster-wide functional memory view."""
        if self.amap.node_of(paddr) != 0:
            return paddr
        return self.amap.encode(self.node_id, paddr)

    def _touch_lines(
        self, paddr: int, size: int, is_write: bool, batch: bool = True
    ) -> Generator:
        assert self.cache is not None
        cache = self.cache
        line_bytes = cache.config.line_bytes
        hit_ns = cache.config.hit_ns
        first = paddr // line_bytes
        last = (paddr + size - 1) // line_bytes
        count = last - first + 1
        if not batch or count == 1:
            for line in range(first, last + 1):
                result = cache.access(line, is_write)
                if result.hit:
                    yield self.sim.timeout(hit_ns)
                    continue
                if result.writeback and result.evicted is not None:
                    yield from self._timing_write(
                        result.evicted * line_bytes, line_bytes
                    )
                # demand fetch of the whole line (timed; data discarded —
                # the functional copy is read separately)
                yield from self._timing_read(line * line_bytes, line_bytes)
            return
        result = cache.access_span(first, count, is_write)
        if result.hits:
            # hits are pure latency — charge them all in one event
            yield self.sim.timeout(result.hits * hit_ns)
        if result.misses:
            yield from self._miss_traffic(result, line_bytes)

    def _miss_traffic(self, result, line_bytes: int) -> Generator:
        """Replay a span's miss traffic with burst coalescing.

        Write-backs stay at their scalar positions (DRAM row-buffer
        state makes the transaction order matter) while the contiguous
        demand-fetch runs between them collapse into burst reads.
        """
        miss = result.miss_lines.tolist()
        align = self._align_lines(line_bytes)
        seg_start = 0
        for victim, k in zip(
            result.wb_lines.tolist(), result.wb_miss_idx.tolist()
        ):
            for start, n in self._runs(miss[seg_start:k], align):
                yield from self._timing_read_burst(start, n, line_bytes)
            seg_start = k
            yield from self._timing_write(victim * line_bytes, line_bytes)
        for start, n in self._runs(miss[seg_start:], align):
            yield from self._timing_read_burst(start, n, line_bytes)

    def _align_lines(self, line_bytes: int) -> int:
        """Burst alignment window expressed in lines (0 = unbounded)."""
        if not self.burst_align_bytes:
            return 0
        return max(self.burst_align_bytes // line_bytes, 1)

    @staticmethod
    def _runs(lines, align: int):
        """Split ascending line addresses into maximal consecutive runs
        that never cross an *align*-line window boundary."""
        if not lines:
            return
        start = prev = lines[0]
        for line in lines[1:]:
            if line == prev + 1 and (align == 0 or line % align):
                prev = line
                continue
            yield start, prev - start + 1
            start = prev = line
        yield start, prev - start + 1

    def _timing_read_burst(
        self, first_line: int, count: int, line_bytes: int
    ) -> Generator:
        """Fetch *count* consecutive lines as one burst packet; a single
        line takes the scalar path (no burst framing to amortize)."""
        if count == 1:
            yield from self._timing_read(first_line * line_bytes, line_bytes)
            return
        request = make_burst_read_req(
            self.node_id,
            self.node_id,
            first_line * line_bytes,
            line_bytes,
            count,
            self.tags.next(),
        )
        yield from self._issue(request)

    def _timing_write_burst(
        self, first_line: int, count: int, line_bytes: int
    ) -> Generator:
        """Write back *count* consecutive lines as one timing-only burst."""
        if count == 1:
            yield from self._timing_write(first_line * line_bytes, line_bytes)
            return
        request = make_burst_write_req(
            self.node_id,
            self.node_id,
            first_line * line_bytes,
            self._zero_payload(count * line_bytes),
            count,
            self.tags.next(),
        )
        request.meta["timing_only"] = True
        yield from self._issue(request)

    def _zero_payload(self, size: int) -> bytes:
        """Placeholder payload for timing-only writes, cached per size
        (the packet path never reads it — no per-eviction allocation)."""
        buf = self._zero_payloads.get(size)
        if buf is None:
            buf = bytes(size)
            self._zero_payloads[size] = buf
        return buf

    def _timing_write(self, paddr: int, size: int) -> Generator:
        """A write that charges full packet timing but moves no data."""
        request = make_write_req(
            self.node_id,
            self.node_id,
            paddr,
            self._zero_payload(size),
            self.tags.next(),
        )
        request.meta["timing_only"] = True
        yield from self._issue(request)

    def _slots_for(self, paddr: int) -> Resource:
        if self.amap.is_remote(paddr, self.node_id):
            return self._remote_slots
        return self._local_slots

    def _issue(self, request: Packet) -> Generator:
        """Send one request and wait for its response, honoring the
        outstanding-request limit and retrying on client-RMC NACKs."""
        slots = self._slots_for(request.addr)
        grant = slots.request()
        yield grant
        try:
            cfg = self.rmc_config
            reply_to: Store = Store(self.sim, name=f"{self.name}.reply")
            request.meta["reply_to"] = reply_to
            request.issue_ns = self.sim.now
            attempts = 0
            while True:
                yield self.crossbar.send(request)
                response: Packet = yield reply_to.get()
                if response.ptype is PacketType.FAULT:
                    # machine-check completion: the remote side is gone
                    raise RemoteAccessError(
                        f"{self.name}: access to {request.addr:#x} failed — "
                        f"{response.meta['error']}",
                        node=response.meta.get("fault_node"),
                        region=self.node_id,
                        tag=response.meta.get("fault_tag", response.tag),
                        retries=response.meta.get("retries"),
                        reason=response.meta.get("reason"),
                    )
                if response.ptype is not PacketType.NACK:
                    break
                # a NACKed burst retries all of its lines
                self.nack_retries.add(request.line_count)
                attempts += 1
                if cfg.max_retries and attempts > cfg.max_retries:
                    raise RemoteAccessError(
                        f"{self.name}: local RMC kept rejecting "
                        f"{request.addr:#x}; gave up after "
                        f"{cfg.max_retries} retries",
                        node=self.node_id,
                        tag=request.tag,
                        retries=cfg.max_retries,
                    )
                yield self.sim.timeout(
                    cfg.backoff_ns(cfg.retry_backoff_ns, attempts)
                )
            if response.tag != request.tag:
                raise ProtocolError(
                    f"{self.name}: response tag {response.tag} != "
                    f"request tag {request.tag}"
                )
        finally:
            slots.release(grant)
        return response
