"""The core's memory-issue model.

A core turns physical-address load/store operations into HT packets
routed over the on-board crossbar. The two structural limits the paper
calls out (Section IV-B) live here:

* up to ``local_outstanding`` (8) concurrent requests to local,
  coherent memory;
* only ``remote_outstanding`` (1) concurrent request to the RMC-mapped
  range, because the prototype presents the RMC as an HT *I/O unit* —
  "a new remote memory request cannot be issued before the previous
  one has been completed".

A client-RMC NACK (buffer full) is retried here after the configured
back-off, like the hardware retry of a posted HT transaction.

Functional/timing split for cached accesses: the simulator keeps data
authoritative in the backing stores, so a *cached* write updates the
backing store functionally (zero time) while the *timing* follows the
write-back cache model — write hits cost ``hit_ns`` and dirty lines pay
a memory write only upon eviction, issued as a ``timing_only`` packet
that moves no data. Remote ranges are cacheable in the prototype, but
coherence is not maintained for I/O memory; the workloads honor the
prototype's discipline (single writer, or parallel read-only phases
after an explicit flush).
"""

from __future__ import annotations

from typing import Generator, Optional, Protocol

from repro.config import CoreConfig, RMCConfig
from repro.errors import ProtocolError
from repro.ht.crossbar import Crossbar
from repro.ht.packet import (
    Packet,
    PacketType,
    TagAllocator,
    make_read_req,
    make_write_req,
)
from repro.mem.addressmap import AddressMap
from repro.mem.cache import Cache
from repro.mem.coherence import CoherenceDomain
from repro.sim.engine import Simulator
from repro.sim.resources import Resource, Store
from repro.sim.stats import Counter, Tally

__all__ = ["Core", "FunctionalMemory"]


class FunctionalMemory(Protocol):
    """Zero-time data access across the whole cluster address map.

    Provided by :class:`repro.cluster.cluster.Cluster`; resolves the
    node prefix and reads/writes the owner's backing store directly.
    Used only for the data side of cached accesses — timing always
    comes from the packet path.
    """

    def fn_read(self, paddr: int, size: int) -> bytes: ...
    def fn_write(self, paddr: int, data: bytes) -> None: ...


class Core:
    """One CPU core bound to a node's crossbar."""

    def __init__(
        self,
        sim: Simulator,
        config: CoreConfig,
        rmc_config: RMCConfig,
        amap: AddressMap,
        node_id: int,
        core_id: int,
        crossbar: Crossbar,
        tags: TagAllocator,
        cache: Optional[Cache] = None,
        functional_mem: Optional[FunctionalMemory] = None,
        coherence: Optional["CoherenceDomain"] = None,
        coherence_idx: int = 0,
    ) -> None:
        self.sim = sim
        self.config = config
        self.rmc_config = rmc_config
        self.amap = amap
        self.node_id = node_id
        self.core_id = core_id
        self.crossbar = crossbar
        self.tags = tags
        self.cache = cache
        self.functional_mem = functional_mem
        self.coherence = coherence
        self.coherence_idx = coherence_idx
        self.name = f"n{node_id}c{core_id}"
        self._local_slots = Resource(
            sim, config.local_outstanding, name=f"{self.name}.lslots"
        )
        self._remote_slots = Resource(
            sim, config.remote_outstanding, name=f"{self.name}.rslots"
        )
        self.loads = Counter(f"{self.name}.loads")
        self.stores = Counter(f"{self.name}.stores")
        self.nack_retries = Counter(f"{self.name}.nack_retries")
        self.load_latency_ns = Tally(f"{self.name}.load_latency")

    # -- raw (uncached) operations ---------------------------------------
    def read(self, paddr: int, size: int) -> Generator:
        """Load *size* bytes at physical *paddr*; returns the data."""
        self.loads.add()
        t0 = self.sim.now
        request = make_read_req(
            self.node_id, self.node_id, paddr, size, self.tags.next()
        )
        response = yield from self._issue(request)
        self.load_latency_ns.observe(self.sim.now - t0)
        return response.payload

    def write(self, paddr: int, data: bytes) -> Generator:
        """Store *data* at physical *paddr*; returns once acked."""
        self.stores.add()
        request = make_write_req(
            self.node_id, self.node_id, paddr, data, self.tags.next()
        )
        yield from self._issue(request)
        return None

    # -- cached operations -----------------------------------------------
    def cached_read(self, paddr: int, size: int) -> Generator:
        """Load through this core's write-back cache.

        Misses fetch whole lines; dirty evictions write back (timing
        only) before the demand fetch. The returned bytes are always
        the authoritative backing-store contents.
        """
        if self.cache is None or self.functional_mem is None:
            return (yield from self.read(paddr, size))
        self.loads.add()
        yield from self._touch_lines(paddr, size, is_write=False)
        return self.functional_mem.fn_read(self._prefixed(paddr), size)

    def cached_write(self, paddr: int, data: bytes) -> Generator:
        """Store through the write-back cache (data lands functionally)."""
        if self.cache is None or self.functional_mem is None:
            return (yield from self.write(paddr, data))
        self.stores.add()
        yield from self._touch_lines(paddr, len(data), is_write=True)
        self.functional_mem.fn_write(self._prefixed(paddr), data)
        return None

    # -- coherent operations (intra-node shared memory) --------------------
    def coherent_read(self, paddr: int, size: int) -> Generator:
        """Load through the node's MESI domain — valid for shared,
        intra-node data only.

        Remote (prefixed) addresses are rejected: the prototype does
        not maintain coherence for I/O memory (Section IV-B), which is
        exactly why multi-writer phases must stay on local memory.
        """
        self._require_coherent(paddr)
        self.loads.add()
        yield from self._coherent_lines(paddr, size, is_write=False)
        return self.functional_mem.fn_read(self._prefixed(paddr), size)

    def coherent_write(self, paddr: int, data: bytes) -> Generator:
        """Store through the node's MESI domain (intra-node only)."""
        self._require_coherent(paddr)
        self.stores.add()
        yield from self._coherent_lines(paddr, len(data), is_write=True)
        self.functional_mem.fn_write(self._prefixed(paddr), data)
        return None

    def _require_coherent(self, paddr: int) -> None:
        if self.coherence is None or self.functional_mem is None:
            raise ProtocolError(
                f"{self.name}: core is not attached to a coherence domain"
            )
        if self.amap.node_of(paddr) != 0:
            raise ProtocolError(
                f"{self.name}: coherent access to remote address "
                f"{paddr:#x} — coherency is not maintained for the "
                "RMC-mapped range (Section IV-B)"
            )

    def _coherent_lines(self, paddr: int, size: int, is_write: bool) -> Generator:
        assert self.cache is not None and self.coherence is not None
        cfg = self.config
        line_bytes = self.cache.config.line_bytes
        first = paddr // line_bytes
        last = (paddr + size - 1) // line_bytes
        domain = self.coherence
        for line in range(first, last + 1):
            interventions = domain.stats.interventions
            if is_write:
                hit = domain.write(self.coherence_idx, line)
            else:
                hit = domain.read(self.coherence_idx, line)
            if hit:
                yield self.sim.timeout(self.cache.config.hit_ns)
                continue
            # miss: the snoop broadcast window always applies; data
            # comes cache-to-cache if a peer held it Modified,
            # otherwise from local DRAM
            yield self.sim.timeout(cfg.snoop_ns)
            if domain.stats.interventions > interventions:
                yield self.sim.timeout(cfg.cache2cache_ns)
            else:
                yield from self._timing_read(line * line_bytes, line_bytes)

    def _timing_read(self, paddr: int, size: int) -> Generator:
        """A read that charges full packet timing; data is discarded
        (the functional copy is fetched separately)."""
        request = make_read_req(
            self.node_id, self.node_id, paddr, size, self.tags.next()
        )
        yield from self._issue(request)

    def flush_cache(self) -> Generator:
        """Write back every dirty line (prototype: done before parallel
        read-only phases, Section IV-B). Data is already authoritative
        in the backing store, so flushes are timing-only writes."""
        if self.cache is None:
            return None
        line_bytes = self.cache.config.line_bytes
        for line in self.cache.flush():
            yield from self._timing_write(line * line_bytes, line_bytes)
        return None

    # -- internals ----------------------------------------------------------
    def _prefixed(self, paddr: int) -> int:
        """Qualify a local (prefix-0) address with this node's id for
        the cluster-wide functional memory view."""
        if self.amap.node_of(paddr) != 0:
            return paddr
        return self.amap.encode(self.node_id, paddr)

    def _touch_lines(self, paddr: int, size: int, is_write: bool) -> Generator:
        assert self.cache is not None
        line_bytes = self.cache.config.line_bytes
        first = paddr // line_bytes
        last = (paddr + size - 1) // line_bytes
        for line in range(first, last + 1):
            result = self.cache.access(line, is_write)
            if result.hit:
                yield self.sim.timeout(self.cache.config.hit_ns)
                continue
            if result.writeback and result.evicted is not None:
                yield from self._timing_write(
                    result.evicted * line_bytes, line_bytes
                )
            # demand fetch of the whole line (timed; data discarded —
            # the functional copy is read separately)
            yield from self.read(line * line_bytes, line_bytes)

    def _timing_write(self, paddr: int, size: int) -> Generator:
        """A write that charges full packet timing but moves no data."""
        request = make_write_req(
            self.node_id, self.node_id, paddr, bytes(size), self.tags.next()
        )
        request.meta["timing_only"] = True
        yield from self._issue(request)

    def _slots_for(self, paddr: int) -> Resource:
        if self.amap.is_remote(paddr, self.node_id):
            return self._remote_slots
        return self._local_slots

    def _issue(self, request: Packet) -> Generator:
        """Send one request and wait for its response, honoring the
        outstanding-request limit and retrying on client-RMC NACKs."""
        slots = self._slots_for(request.addr)
        grant = slots.request()
        yield grant
        try:
            reply_to: Store = Store(self.sim, name=f"{self.name}.reply")
            request.meta["reply_to"] = reply_to
            request.issue_ns = self.sim.now
            while True:
                yield self.crossbar.send(request)
                response: Packet = yield reply_to.get()
                if response.ptype is not PacketType.NACK:
                    break
                self.nack_retries.add()
                yield self.sim.timeout(self.rmc_config.retry_backoff_ns)
            if response.tag != request.tag:
                raise ProtocolError(
                    f"{self.name}: response tag {response.tag} != "
                    f"request tag {request.tag}"
                )
        finally:
            slots.release(grant)
        return response
