"""Automatic region recovery after a confirmed donor death.

The paper is explicit that remote memory adds no fault tolerance
(Section V); PR 4 therefore made donor death *survivable* — leases
revoked, segments dropped, pages poisoned so touches raise. This
module closes the loop and makes it *recoverable*:

1. **re-reserve** — replacement capacity is borrowed from healthy
   donors through the ordinary Fig. 4 reservation exchange (the
   region-growth mechanics of ``examples/region_rebalance.py``,
   promoted into the library), nearest donors first;
2. **re-materialize** — each lost page is rebuilt on the new donor
   from its recoverable source: the tenant's last checkpoint (the
   stand-in for the owner's backing store / swap tier), or zeros when
   no checkpoint exists. Lines the tenant dirtied *after* the source
   copy are **dirty-and-lost**: they are recorded per line in the
   region damage map instead of condemning the whole region;
3. **PTE rewrite** — the virtual pages are repointed at the new
   frames, so tenant accesses resume transparently; only a touch of a
   dirty-and-lost line raises, and precisely.

Every restore write is a *timed* event issued through a real core, so
recovery traffic competes with foreground traffic on the fabric — MTTR
is measured, not asserted.

Only this module (and :mod:`repro.cluster.health`, which drives it)
may initiate recovery actions; simcheck rule SIM008 enforces the
layering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import (
    RecoveryError,
    RemoteAccessError,
    ReservationError,
    TopologyError,
)
from repro.sim.engine import Interrupt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.cluster.health import HealthMonitor

__all__ = ["RecoveryReport", "re_reserve", "heal_sessions"]

#: Default bound on one replacement-reservation exchange (overridden by
#: :attr:`repro.config.HealthConfig.reserve_timeout_ns` when the health
#: layer drives recovery).
RESERVE_TIMEOUT_NS: float = 150_000.0


@dataclass(frozen=True)
class RecoveryReport:
    """What one donor-death recovery pass accomplished."""

    donor: int
    #: sim time the death was confirmed (recovery started)
    detected_ns: float
    #: sim time the last affected page was healed
    healed_ns: float
    #: sessions that had allocations on the dead donor
    sessions: int
    #: allocations rebound to healthy donors
    allocations: int
    #: allocations left poisoned (no healthy capacity, or the
    #: replacement donor failed mid-restore)
    unhealed: int
    #: pages re-materialized
    pages: int
    #: dirty-and-lost lines recorded in damage maps
    lost_lines: int
    #: donors that supplied replacement capacity
    new_donors: tuple[int, ...]

    @property
    def mttr_ns(self) -> float:
        """Time-to-repair for this event: detection to last heal."""
        return self.healed_ns - self.detected_ns


def _route_is_clear(cluster: "Cluster", src: int, dst: int) -> bool:
    """True when the current route src→dst avoids known-bad hardware.

    Recovery runs *because* something died, so the fabric may be
    partitioned: a reservation CTRL packet routed through a dead node's
    switch is silently black-holed and the exchange would only end via
    the timeout. Pre-filtering candidates behind known-dead hops keeps
    MTTR from paying one full timeout per unreachable donor. Unknown
    failures (drop rules, racing flaps) still get through — the timed
    race in :func:`re_reserve` is the safety net for those.
    """
    if cluster.faults is None:
        return True
    try:
        path = cluster.network.routing.path(src, dst)
    except TopologyError:
        return False
    dead = cluster.faults.dead_nodes
    down = cluster.faults.down_links
    for a, b in zip(path, path[1:]):
        if b != dst and b in dead:
            return False
        if (a, b) in down:
            return False
    return True


def _bounded_borrow(
    cluster: "Cluster", borrower: int, donor: int, size: int
) -> Generator:
    """Run one borrow exchange, converting every exit into a status.

    Spawned as a sub-process so :func:`re_reserve` can race it against
    a timeout; it must therefore never let an exception escape (the
    engine re-raises unconsumed process failures). Returns
    ``("ok", reservation)``, ``("declined", exc)``, or
    ``("interrupted", None)`` after a timeout interrupt — in which case
    the reserve path's ``BaseException`` handler has already abandoned
    the pending ack, so nothing leaks.
    """
    try:
        reservation = yield from cluster.borrow_process(
            borrower, donor, size
        )
    except ReservationError as exc:
        return ("declined", exc)
    except RemoteAccessError as exc:
        # the candidate died between the filter and the exchange
        return ("declined", exc)
    except Interrupt:
        return ("interrupted", None)
    return ("ok", reservation)


def re_reserve(
    cluster: "Cluster",
    borrower: int,
    size: int,
    exclude: frozenset = frozenset(),
    timeout_ns: float = RESERVE_TIMEOUT_NS,
) -> Generator:
    """Borrow *size* replacement bytes from the nearest healthy donor.

    A simulation process (``res = yield from re_reserve(...)``). Tries
    healthy candidates in (hop distance, node id) order so replacement
    memory lands as close as capacity allows. Each exchange is raced
    against *timeout_ns*: a black-holed exchange (partition, dropped
    CTRL packet) is interrupted and the next candidate tried, so
    recovery never hangs on an unreachable donor. Raises
    :class:`~repro.errors.RecoveryError` when nobody can serve the
    request — the caller leaves the affected pages poisoned (PR-4
    fail-fast degradation) rather than losing the error.
    """
    sim = cluster.sim
    dead = cluster.faults.dead_nodes if cluster.faults is not None else set()
    candidates = sorted(
        (
            n
            for n in cluster.nodes
            if n != borrower
            and n not in dead
            and n not in exclude
            and cluster.nodes[n].os.donated_free_bytes >= size
        ),
        key=lambda n: (cluster.hops(borrower, n), n),
    )
    last_error: Optional[Exception] = None
    for donor in candidates:
        if not _route_is_clear(cluster, borrower, donor):
            last_error = RecoveryError(
                f"no usable route from {borrower} to candidate {donor}",
                node=donor,
                region=borrower,
            )
            continue
        proc = sim.process(
            _bounded_borrow(cluster, borrower, donor, size),
            name=f"rebalance.borrow{borrower}<-{donor}",
        )
        yield sim.any_of([proc, sim.timeout(timeout_ns)])
        if not proc.triggered:
            # exchange black-holed by something the filter didn't know
            # about: interrupt the attempt (its handler abandons the
            # pending ack) and move on
            proc.interrupt("reserve timeout")
            last_error = RecoveryError(
                f"reservation exchange with candidate {donor} timed out "
                f"after {timeout_ns:.0f} ns",
                node=donor,
                region=borrower,
            )
            continue
        status, payload = proc.value
        if status == "ok":
            return payload
        # declined (fragmented pool, raced another borrower, died
        # mid-exchange) — try the next candidate, keep the reason
        last_error = payload
    raise RecoveryError(
        f"no healthy donor can supply {size:#x} replacement bytes for "
        f"node {borrower}"
        + (f" (last donor said: {last_error})" if last_error else ""),
        region=borrower,
    )


def heal_sessions(
    cluster: "Cluster",
    donor: int,
    detected_ns: float,
    monitor: Optional["HealthMonitor"] = None,
    reserve_timeout_ns: Optional[float] = None,
) -> Generator:
    """Recover every session's allocations lost to *donor*'s death.

    A simulation process spawned by the health layer when a death is
    confirmed. For each stranded allocation: re-reserve capacity,
    rebind the allocation onto a fresh arena, re-materialize each page
    from its recoverable source with timed writes, and rewrite the
    PTEs. Returns a :class:`RecoveryReport` (also appended to
    *monitor*'s ``recoveries`` when given).
    """
    if reserve_timeout_ns is None:
        reserve_timeout_ns = (
            monitor.cfg.reserve_timeout_ns
            if monitor is not None
            else RESERVE_TIMEOUT_NS
        )
    sessions = allocations = unhealed = pages_healed = lost_total = 0
    new_donors: set[int] = set()
    for sess in cluster._sessions:
        if sess.node_id == donor:
            continue
        lost = sess.allocator.lost_allocations(donor)
        if not lost:
            continue
        sessions += 1
        page = sess.aspace.page_bytes
        for alloc in lost:
            num_pages = -(-alloc.size // page)
            try:
                reservation = yield from re_reserve(
                    cluster,
                    sess.node_id,
                    num_pages * page,
                    exclude=frozenset((donor,)),
                    timeout_ns=reserve_timeout_ns,
                )
            except RecoveryError as exc:
                # pages stay poisoned: fail-fast degradation, recorded
                unhealed += 1
                if monitor is not None:
                    monitor.events.append(
                        (cluster.sim.now, "unrecoverable", str(exc))
                    )
                continue
            try:
                healed, lines = yield from _heal_allocation(
                    cluster, sess, alloc, donor, reservation
                )
            except RemoteAccessError as exc:
                # the replacement donor failed mid-restore: pages not
                # yet repointed stay poisoned; a later death
                # confirmation of the new donor re-heals the rest
                unhealed += 1
                if monitor is not None:
                    monitor.events.append(
                        (cluster.sim.now, "restore_interrupted", str(exc))
                    )
                continue
            pages_healed += healed
            lost_total += lines
            allocations += 1
            new_donors.add(reservation.donor_node)
    report = RecoveryReport(
        donor=donor,
        detected_ns=detected_ns,
        healed_ns=cluster.sim.now,
        sessions=sessions,
        allocations=allocations,
        unhealed=unhealed,
        pages=pages_healed,
        lost_lines=lost_total,
        new_donors=tuple(sorted(new_donors)),
    )
    if monitor is not None:
        monitor.recoveries.append(report)
        monitor.events.append(
            (
                cluster.sim.now,
                "recovered",
                f"donor {donor}: {allocations} allocations, "
                f"{pages_healed} pages, {lost_total} lost lines, "
                f"ttr {report.mttr_ns:.0f} ns",
            )
        )
    return report


def _heal_allocation(
    cluster: "Cluster", sess, alloc, donor: int, reservation
) -> Generator:
    """Rebind one allocation and re-materialize its pages.

    Returns ``(pages_healed, lost_lines)``. Raises
    :class:`~repro.errors.RemoteAccessError` if the replacement donor
    fails mid-restore (the caller records and degrades).
    """
    line = cluster.config.node.cache.line_bytes
    page = sess.aspace.page_bytes
    core = sess.node.cores[0]
    num_pages = -(-alloc.size // page)
    arena_idx = sess.allocator.add_reservation(reservation)
    new_phys = sess.allocator.rebind_allocation(alloc.vaddr, arena_idx)
    shadow = sess.shadow_of(alloc.vaddr)
    lost_total = 0
    for i in range(num_pages):
        pv = alloc.vaddr + i * page
        old_page = alloc.phys_start + i * page  # on the dead donor
        new_page = new_phys + i * page
        # ground truth survives functionally (the dead node's backing
        # store object persists); the *simulated* data is unreachable,
        # which is exactly why only lines that diverge from the
        # recoverable source count as dirty-and-lost
        truth = cluster.fn_read(old_page, page)
        source = shadow.get(pv) if shadow is not None else None
        if source is None:
            source = bytes(page)
        lost_lines = tuple(
            pv + off
            for off in range(0, page, line)
            if truth[off : off + line] != source[off : off + line]
        )
        # the restore always writes — the new frames may hold stale
        # data from a previous tenant — and is timed, so recovery
        # competes with foreground traffic on the fabric
        yield from core.write(new_page, source)
        sess.aspace.repoint_page(
            pv,
            new_page,
            lost_lines=lost_lines,
            donor=donor,
            line_bytes=line,
        )
        for lv in lost_lines:
            cluster.regions.record_damage(
                sess.node_id, old_page + (lv - pv), donor
            )
        lost_total += len(lost_lines)
    return num_pages, lost_total
