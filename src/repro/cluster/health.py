"""Failure detection: heartbeats, suspicion, quarantine, declaration.

The reservation protocol assumes donors stay up (Section III-B); this
module is the cluster's way of *noticing* when they do not. Design:

* **Probes on the real path.** Each observer RMC sends periodic
  liveness probes (:func:`repro.ht.packet.make_probe`) to the peers it
  borrowed from. Probes are CTRL packets riding the exact fabric path
  a real request takes — switches, links, the peer's control plane —
  so whatever kills requests also kills probes.
* **Suspicion, not verdicts.** A missed probe increments a per-
  ``(observer, peer)`` suspicion counter; any answered probe resets
  it. At ``quarantine_after`` consecutive misses the observer assumes
  a flapping *link* first: the first suspect edge on the route — the
  first hop not vouched for by another watched peer's answered
  probes — is quarantined and the fabric reroutes around it where the
  topology allows (:meth:`repro.noc.routing.RoutingTable.quarantine_edge`).
  Only at ``miss_threshold`` misses is the peer declared dead.
* **Declaration drives recovery.** A confirmed death runs
  :func:`degrade_donor` (PR 4's graceful degradation) and, when
  ``auto_recover`` is set, spawns
  :func:`repro.cluster.rebalance.heal_sessions` as a competing
  simulation process.

**Zero-cost when disarmed.** A cluster carries ``health = None`` until
:meth:`repro.cluster.cluster.Cluster.arm_health` runs; the only hot
hook is one ``is not None`` check on the borrow path. An armed monitor
with ``watch_on_borrow=False`` and no explicit watches schedules no
events, so its timing is bit-identical to a disarmed run.

**Stopping.** Heartbeats are periodic, so an armed monitor keeps the
event queue non-empty forever; :meth:`HealthMonitor.stop` winds every
probe loop and lease daemon down at its next wake-up so ``sim.run()``
can drain. The idiom::

    sim.run(until=horizon)
    cluster.health.stop()
    sim.run()   # drains the leftover timers as no-ops
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.cluster import rebalance
from repro.config import HealthConfig
from repro.errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.cluster.reservation import Reservation

__all__ = ["HealthMonitor", "degrade_donor", "expire_lease"]


def degrade_donor(cluster: "Cluster", dead: int) -> None:
    """Degrade gracefully after *dead*'s crash (idempotent).

    Mirrors what each survivor's OS does on a machine-check storm from
    the fabric: leases from the dead donor are revoked, its segments
    leave the borrowing regions, and every mapped page it was backing
    is poisoned so a touch raises
    :class:`~repro.errors.RemoteAccessError` instead of hanging. Both
    the fault injector's death callback and the health monitor's
    declaration funnel here; whichever fires second is a no-op.
    """
    if dead in cluster._degraded:
        return
    cluster._degraded.add(dead)
    for node_id, node in cluster.nodes.items():
        if node_id == dead:
            continue
        lost = node.reservations.revoke_donor(dead)
        if lost and cluster.faults is not None:
            cluster.faults.note_revoked(node_id, len(lost))
    cluster.regions.drop_donor_segments(dead)
    for sess in cluster._sessions:
        if sess.node_id != dead:
            sess.allocator.revoke_donor(dead)
    cluster.regions.check_invariants()


def expire_lease(
    cluster: "Cluster", borrower: int, reservation: "Reservation"
) -> None:
    """Tear down *borrower*'s view of an expired lease.

    The donor is (presumed) alive but renewals stopped landing: the
    donor may already have reclaimed and re-granted the range, so the
    borrower must treat the memory as gone — segment dropped, arenas
    retired, pages poisoned. The borrower-side state machine moved the
    lease to EXPIRED before this runs.
    """
    region = cluster.regions.region_of(borrower)
    segment = next(
        (
            s
            for s in region.segments
            if s.start == reservation.prefixed_start
        ),
        None,
    )
    if segment is not None:
        cluster.regions.remove_segment(borrower, segment)
    for sess in cluster._sessions:
        if sess.node_id == borrower:
            sess.allocator.expire_reservation(reservation)
    cluster.regions.check_invariants()


class HealthMonitor:
    """Armed failure detection for one cluster."""

    def __init__(self, cluster: "Cluster", config: HealthConfig) -> None:
        self.cluster = cluster
        self.cfg = config
        self.sim = cluster.sim
        #: (observer, peer) -> consecutive missed probes
        self.suspicion: dict[tuple[int, int], int] = {}
        self._watches: set[tuple[int, int]] = set()
        #: peers some observer declared dead
        self.confirmed_dead: set[int] = set()
        #: undirected edges this monitor quarantined
        self.quarantined: set[tuple[int, int]] = set()
        #: (sim_ns, kind, detail) — the replay-comparable health record
        self.events: list[tuple[float, str, str]] = []
        #: :class:`~repro.cluster.rebalance.RecoveryReport` per death
        self.recoveries: list = []
        self.probes_sent = 0
        self._stopped = False

    # -- lifecycle --------------------------------------------------------
    def stop(self) -> None:
        """Wind down every probe loop and lease daemon (drainable run)."""
        self._stopped = True
        for node in self.cluster.nodes.values():
            node.os.stop_leases()

    # -- watch management -------------------------------------------------
    def watch(self, observer: int, peer: int) -> None:
        """Start (idempotent) heartbeat probing of *peer* by *observer*."""
        key = (observer, peer)
        if key in self._watches or observer == peer:
            return
        self._watches.add(key)
        self.sim.process(
            self._probe_loop(observer, peer),
            name=f"health.{observer}->{peer}",
        )

    def on_new_lease(self, borrower: int, reservation: "Reservation") -> None:
        """Hook run by the borrow path: watch the donor, start renewal."""
        self.watch(borrower, reservation.donor_node)
        if self.cfg.lease_ttl_ns:
            client = self.cluster.node(borrower).reservations
            self.sim.process(
                client.lease_daemon(
                    reservation,
                    self.cfg.lease_ttl_ns,
                    self.cfg.renew_margin_ns,
                    self.cfg.lease_grace_ns,
                    timeout_ns=self.cfg.probe_timeout_ns,
                    on_expired=lambda res, b=borrower: self._on_lease_expired(
                        b, res
                    ),
                    stop=lambda: self._stopped,
                ),
                name=(
                    f"health.lease{borrower}"
                    f"@{reservation.prefixed_start:#x}"
                ),
            )

    # -- the probe loop ----------------------------------------------------
    def _probe_loop(self, observer: int, peer: int) -> Generator:
        cfg = self.cfg
        node = self.cluster.node(observer)
        seq = 0
        while True:
            yield self.sim.timeout(cfg.heartbeat_period_ns)
            if self._stopped or peer in self.confirmed_dead:
                return
            faults = self.cluster.faults
            if faults is not None and observer in faults.dead_nodes:
                return  # dead observers probe nobody
            seq += 1
            self.probes_sent += 1
            tag = node.rmc.tags.next()
            ack_evt = node.os.expect_ack(tag)
            yield node.rmc.send_probe(peer, tag, seq)
            yield self.sim.any_of(
                [ack_evt, self.sim.timeout(cfg.probe_timeout_ns)]
            )
            if ack_evt.triggered:
                self._probe_ok(observer, peer)
            else:
                node.os.abandon_ack(tag)
                self._probe_miss(observer, peer)
                if peer in self.confirmed_dead:
                    return

    def _probe_ok(self, observer: int, peer: int) -> None:
        if self.suspicion.pop((observer, peer), None):
            self.events.append(
                (self.sim.now, "cleared", f"{observer} trusts {peer} again")
            )

    def _probe_miss(self, observer: int, peer: int) -> None:
        cfg = self.cfg
        misses = self.suspicion.get((observer, peer), 0) + 1
        self.suspicion[(observer, peer)] = misses
        self.events.append(
            (self.sim.now, "miss", f"{observer}->{peer} x{misses}")
        )
        if misses == cfg.quarantine_after and misses < cfg.miss_threshold:
            # suspect the path before the peer: a flapping link on the
            # route explains missed probes just as well as a death
            self._quarantine_suspect_hop(observer, peer)
        if misses >= cfg.miss_threshold:
            self._declare_dead(observer, peer)

    def _quarantine_suspect_hop(self, observer: int, peer: int) -> None:
        """Route around the first *suspect* edge on the path to *peer*.

        Walks the current route and skips over hops whose far end is a
        watched peer with zero suspicion — their answered probes are
        live evidence those edges carry traffic, so quarantining one
        would sever a working path on a misattributed loss (the classic
        way a detector turns one failure into two). The first hop with
        no such alibi is the suspect; where the topology allows, the
        fabric reroutes around it.
        """
        routing = self.cluster.network.routing
        try:
            path = routing.path(observer, peer)
        except TopologyError:
            return
        for a, b in zip(path, path[1:]):
            if (
                b != peer
                and (observer, b) in self._watches
                and self.suspicion.get((observer, b), 0) == 0
            ):
                continue  # far end demonstrably reachable; edge cleared
            if routing.quarantine_edge(a, b):
                self.quarantined.add((min(a, b), max(a, b)))
                self.events.append(
                    (self.sim.now, "quarantine",
                     f"edge {a}-{b} rerouted (suspect on {observer}->{peer})")
                )
            else:
                self.events.append(
                    (self.sim.now, "quarantine_refused",
                     f"edge {a}-{b} is a cut edge")
                )
            return

    def _declare_dead(self, observer: int, peer: int) -> None:
        if peer in self.confirmed_dead:
            return
        self.confirmed_dead.add(peer)
        self.events.append(
            (self.sim.now, "dead",
             f"node {peer} declared dead by observer {observer}")
        )
        degrade_donor(self.cluster, peer)
        if self.cfg.auto_recover:
            self.sim.process(
                rebalance.heal_sessions(
                    self.cluster, peer,
                    detected_ns=self.sim.now,
                    monitor=self,
                ),
                name=f"health.recover{peer}",
            )

    def _on_lease_expired(
        self, borrower: int, reservation: "Reservation"
    ) -> None:
        self.events.append(
            (self.sim.now, "lease_expired",
             f"borrower {borrower} lost lease "
             f"{reservation.prefixed_start:#x} on donor "
             f"{reservation.donor_node}")
        )
        expire_lease(self.cluster, borrower, reservation)
