"""Failure detection: heartbeats, suspicion, quarantine, declaration.

The reservation protocol assumes donors stay up (Section III-B); this
module is the cluster's way of *noticing* when they do not. Design:

* **Probes on the real path.** Each observer RMC sends periodic
  liveness probes (:func:`repro.ht.packet.make_probe`) to the peers it
  borrowed from. Probes are CTRL packets riding the exact fabric path
  a real request takes — switches, links, the peer's control plane —
  so whatever kills requests also kills probes.
* **Suspicion, not verdicts.** A missed probe increments a per-
  ``(observer, peer)`` suspicion counter; any answered probe resets
  it. At ``quarantine_after`` consecutive misses the observer assumes
  a flapping *link* first: the first suspect edge on the route — the
  first hop not vouched for by another watched peer's answered
  probes — is quarantined and the fabric reroutes around it where the
  topology allows (:meth:`repro.noc.routing.RoutingTable.quarantine_edge`).
  Only at ``miss_threshold`` misses is the peer declared dead.
* **Declaration drives recovery.** A confirmed death runs
  :func:`degrade_donor` (PR 4's graceful degradation) and, when
  ``auto_recover`` is set, spawns
  :func:`repro.cluster.rebalance.heal_sessions` as a competing
  simulation process.
* **Corroboration before declaration** (``indirect_probes > 0``). A
  single observer cannot tell a dead peer from a broken path, so at
  ``miss_threshold`` it first solicits SWIM-style indirect probes
  (``ping_req`` CTRL messages) from other watched peers; any helper
  that reaches the suspect refutes the verdict. An observer that
  cannot itself reach a ``quorum_fraction`` of its watch set assumes
  *it* is the partitioned minority: it enters **isolated** mode and
  self-fences — no declarations, no new borrows — instead of
  degrading the majority. A symmetric 50/50 split therefore isolates
  both sides rather than triggering mutual ``degrade_donor`` storms.
* **Rejoin healing.** When the fault layer restores a link
  (:meth:`on_link_restored`), quarantined edges are cleared back to
  native routes, and peers declared dead while unreachable are
  re-probed; a peer that answers is re-admitted — ``confirmed_dead``
  retracted, the degraded-donor mark lifted, leases still held from
  it re-watched. Isolated observers exit isolation on their own as
  soon as probes reach quorum again.

**Zero-cost when disarmed.** A cluster carries ``health = None`` until
:meth:`repro.cluster.cluster.Cluster.arm_health` runs; the only hot
hook is one ``is not None`` check on the borrow path. An armed monitor
with ``watch_on_borrow=False`` and no explicit watches schedules no
events, so its timing is bit-identical to a disarmed run.

**Stopping.** Heartbeats are periodic, so an armed monitor keeps the
event queue non-empty forever; :meth:`HealthMonitor.stop` winds every
probe loop and lease daemon down at its next wake-up so ``sim.run()``
can drain. The idiom::

    sim.run(until=horizon)
    cluster.health.stop()
    sim.run()   # drains the leftover timers as no-ops
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Optional

from repro.cluster import rebalance
from repro.cluster.reservation import LeaseState
from repro.config import HealthConfig
from repro.errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.cluster.reservation import Reservation

__all__ = ["HealthMonitor", "degrade_donor", "expire_lease"]


def degrade_donor(cluster: "Cluster", dead: int) -> None:
    """Degrade gracefully after *dead*'s crash (idempotent).

    Mirrors what each survivor's OS does on a machine-check storm from
    the fabric: leases from the dead donor are revoked, its segments
    leave the borrowing regions, and every mapped page it was backing
    is poisoned so a touch raises
    :class:`~repro.errors.RemoteAccessError` instead of hanging. Both
    the fault injector's death callback and the health monitor's
    declaration funnel here; whichever fires second is a no-op.
    """
    if dead in cluster._degraded:
        return
    cluster._degraded.add(dead)
    for node_id, node in cluster.nodes.items():
        if node_id == dead:
            continue
        lost = node.reservations.revoke_donor(dead)
        if lost and cluster.faults is not None:
            cluster.faults.note_revoked(node_id, len(lost))
    cluster.regions.drop_donor_segments(dead)
    for sess in cluster._sessions:
        if sess.node_id != dead:
            sess.allocator.revoke_donor(dead)
    cluster.regions.check_invariants()


def expire_lease(
    cluster: "Cluster", borrower: int, reservation: "Reservation"
) -> None:
    """Tear down *borrower*'s view of an expired lease.

    The donor is (presumed) alive but renewals stopped landing: the
    donor may already have reclaimed and re-granted the range, so the
    borrower must treat the memory as gone — segment dropped, arenas
    retired, pages poisoned. The borrower-side state machine moved the
    lease to EXPIRED before this runs.
    """
    region = cluster.regions.region_of(borrower)
    segment = next(
        (
            s
            for s in region.segments
            if s.start == reservation.prefixed_start
        ),
        None,
    )
    if segment is not None:
        cluster.regions.remove_segment(borrower, segment)
    for sess in cluster._sessions:
        if sess.node_id == borrower:
            sess.allocator.expire_reservation(reservation)
    cluster.regions.check_invariants()


class HealthMonitor:
    """Armed failure detection for one cluster."""

    def __init__(self, cluster: "Cluster", config: HealthConfig) -> None:
        self.cluster = cluster
        self.cfg = config
        self.sim = cluster.sim
        #: (observer, peer) -> consecutive missed probes
        self.suspicion: dict[tuple[int, int], int] = {}
        self._watches: set[tuple[int, int]] = set()
        #: every peer each observer ever watched — survives probe-loop
        #: exits, so it is the stable quorum denominator
        self.watch_set: dict[int, set[int]] = {}
        #: peers some observer declared dead
        self.confirmed_dead: set[int] = set()
        #: observers currently self-fenced (below partition quorum)
        self.isolated: set[int] = set()
        #: undirected edges this monitor quarantined
        self.quarantined: set[tuple[int, int]] = set()
        #: (sim_ns, kind, detail) — the replay-comparable health record
        self.events: list[tuple[float, str, str]] = []
        #: :class:`~repro.cluster.rebalance.RecoveryReport` per death
        self.recoveries: list = []
        self.probes_sent = 0
        self._stopped = False
        #: (observer, peer) corroboration rounds in flight
        self._corroborating: set[tuple[int, int]] = set()
        #: a dead-peer revalidation pass is queued or running
        self._revalidating = False

    # -- lifecycle --------------------------------------------------------
    def stop(self) -> None:
        """Wind down every probe loop and lease daemon (drainable run)."""
        self._stopped = True
        for node in self.cluster.nodes.values():
            node.os.stop_leases()

    # -- watch management -------------------------------------------------
    def watch(self, observer: int, peer: int) -> None:
        """Start (idempotent) heartbeat probing of *peer* by *observer*."""
        key = (observer, peer)
        if key in self._watches or observer == peer:
            return
        self._watches.add(key)
        self.watch_set.setdefault(observer, set()).add(peer)
        self.sim.process(
            self._probe_loop(observer, peer),
            name=f"health.{observer}->{peer}",
        )

    def is_isolated(self, node_id: int) -> bool:
        """True while *node_id* is self-fenced below partition quorum."""
        return node_id in self.isolated

    def on_new_lease(self, borrower: int, reservation: "Reservation") -> None:
        """Hook run by the borrow path: watch the donor, start renewal."""
        self.watch(borrower, reservation.donor_node)
        if self.cfg.lease_ttl_ns:
            client = self.cluster.node(borrower).reservations
            self.sim.process(
                client.lease_daemon(
                    reservation,
                    self.cfg.lease_ttl_ns,
                    self.cfg.renew_margin_ns,
                    self.cfg.lease_grace_ns,
                    timeout_ns=self.cfg.probe_timeout_ns,
                    on_expired=lambda res, b=borrower: self._on_lease_expired(
                        b, res
                    ),
                    stop=lambda: self._stopped,
                ),
                name=(
                    f"health.lease{borrower}"
                    f"@{reservation.prefixed_start:#x}"
                ),
            )

    # -- the probe loop ----------------------------------------------------
    def _probe_loop(self, observer: int, peer: int) -> Generator:
        # every exit path must surrender the (observer, peer) watch key:
        # a loop that returned (observer died, peer declared, monitor
        # stopped) but kept the key would make watch() a silent no-op
        # forever, so a readmitted peer could never be re-watched
        try:
            yield from self._probe_loop_body(observer, peer)
        finally:
            self._watches.discard((observer, peer))

    def _probe_loop_body(self, observer: int, peer: int) -> Generator:
        cfg = self.cfg
        node = self.cluster.node(observer)
        seq = 0
        while True:
            yield self.sim.timeout(cfg.heartbeat_period_ns)
            if self._stopped or peer in self.confirmed_dead:
                return
            faults = self.cluster.faults
            if faults is not None and observer in faults.dead_nodes:
                return  # dead observers probe nobody
            seq += 1
            self.probes_sent += 1
            tag = node.rmc.tags.next()
            ack_evt = node.os.expect_ack(tag)
            yield node.rmc.send_probe(peer, tag, seq)
            yield self.sim.any_of(
                [ack_evt, self.sim.timeout(cfg.probe_timeout_ns)]
            )
            if ack_evt.triggered:
                self._probe_ok(observer, peer)
            else:
                node.os.abandon_ack(tag)
                self._probe_miss(observer, peer)
                if peer in self.confirmed_dead:
                    return

    def _probe_ok(self, observer: int, peer: int) -> None:
        if self.suspicion.pop((observer, peer), None):
            self.events.append(
                (self.sim.now, "cleared", f"{observer} trusts {peer} again")
            )
        if observer in self.isolated and self._has_quorum(observer):
            self.isolated.discard(observer)
            self.events.append(
                (self.sim.now, "rejoined",
                 f"observer {observer} regained quorum; fence lifted")
            )

    def _probe_miss(self, observer: int, peer: int) -> None:
        cfg = self.cfg
        misses = self.suspicion.get((observer, peer), 0) + 1
        self.suspicion[(observer, peer)] = misses
        self.events.append(
            (self.sim.now, "miss", f"{observer}->{peer} x{misses}")
        )
        if misses == cfg.quarantine_after and misses < cfg.miss_threshold:
            # suspect the path before the peer: a flapping link on the
            # route explains missed probes just as well as a death
            self._quarantine_suspect_hop(observer, peer)
        if misses >= cfg.miss_threshold:
            if cfg.indirect_probes > 0:
                self._maybe_corroborate(observer, peer)
            else:
                self._declare_dead(observer, peer)

    # -- corroboration and isolation ---------------------------------------
    def _reachable(self, observer: int, peer: int) -> bool:
        """Is *peer* currently reachable evidence-wise for *observer*?

        A peer counts unreachable once its suspicion reached the
        quarantine threshold (probes are demonstrably not landing) or
        it is already declared dead.
        """
        return (
            peer not in self.confirmed_dead
            and self.suspicion.get((observer, peer), 0)
            < self.cfg.quarantine_after
        )

    def _has_quorum(self, observer: int) -> bool:
        """Can *observer* reach enough of its watch set to pass verdicts?"""
        watched = self.watch_set.get(observer, set())
        if not watched:
            return True
        reachable = sum(1 for p in watched if self._reachable(observer, p))
        needed = max(
            1, math.ceil(self.cfg.quorum_fraction * len(watched))
        )
        return reachable >= needed

    def _enter_isolated(self, observer: int) -> None:
        if observer in self.isolated:
            return
        self.isolated.add(observer)
        self.events.append(
            (self.sim.now, "isolated",
             f"observer {observer} below quorum; self-fencing "
             "(no declarations, no new borrows)")
        )

    def _maybe_corroborate(self, observer: int, peer: int) -> None:
        key = (observer, peer)
        if key in self._corroborating or peer in self.confirmed_dead:
            return
        if not self._has_quorum(observer):
            # the observer itself is the cut-off side: self-fence
            # instead of declaring the (majority) suspect dead
            self._enter_isolated(observer)
            return
        self._corroborating.add(key)
        self.sim.process(
            self._corroborate(observer, peer),
            name=f"health.corr{observer}->{peer}",
        )

    def _corroborate(self, observer: int, peer: int) -> Generator:
        """SWIM-style indirect probing before a death declaration.

        The observer asks up to ``indirect_probes`` other *reachable*
        watched peers to probe the suspect on its behalf. Any helper
        that reaches the suspect refutes the verdict (the suspect is
        alive, the observer's path is broken); only when nobody can
        vouch — and the observer still holds quorum — does the
        declaration proceed on corroborated evidence.
        """
        cfg = self.cfg
        node = self.cluster.node(observer)
        try:
            helpers = [
                p
                for p in sorted(self.watch_set.get(observer, ()))
                if p != peer and self._reachable(observer, p)
            ][: cfg.indirect_probes]
            waits: list[tuple[int, object]] = []
            for helper in helpers:
                tag = node.rmc.tags.next()
                evt = node.os.expect_ack(tag)
                yield node.rmc.send_ctrl(
                    helper,
                    tag=tag,
                    kind="ping_req",
                    target=peer,
                    timeout_ns=cfg.ping_req_timeout_ns,
                )
                waits.append((tag, evt))
            if waits:
                # helpers answer within their own probe timeout; one
                # extra probe_timeout covers the ack's return trip
                deadline = self.sim.timeout(
                    cfg.ping_req_timeout_ns + cfg.probe_timeout_ns
                )
                yield self.sim.any_of(
                    [self.sim.all_of([evt for _, evt in waits]), deadline]
                )
            vouched = False
            for tag, evt in waits:
                if evt.triggered:
                    if evt.value.meta.get("reachable"):
                        vouched = True
                else:
                    node.os.abandon_ack(tag)
            if vouched:
                self.suspicion.pop((observer, peer), None)
                self.events.append(
                    (self.sim.now, "refuted",
                     f"indirect probe reached {peer}; observer "
                     f"{observer} stands down")
                )
                return
            if self._stopped or peer in self.confirmed_dead:
                return
            faults = self.cluster.faults
            if faults is not None and observer in faults.dead_nodes:
                return  # dead observers declare nobody
            # last look before the verdict: the helpers' evidence aged
            # across the whole wait window, and a partition that healed
            # meanwhile would make a declaration now both false and
            # unretractable (no further link restore will re-probe)
            tag = node.rmc.tags.next()
            direct = node.os.expect_ack(tag)
            self.probes_sent += 1
            yield node.rmc.send_probe(peer, tag)
            yield self.sim.any_of(
                [direct, self.sim.timeout(cfg.probe_timeout_ns)]
            )
            if direct.triggered:
                self.suspicion.pop((observer, peer), None)
                self.events.append(
                    (self.sim.now, "refuted",
                     f"suspect {peer} answered the final direct probe")
                )
                return
            node.os.abandon_ack(tag)
            if self._stopped or peer in self.confirmed_dead:
                return
            if not self._has_quorum(observer):
                self._enter_isolated(observer)
                return
            self._declare_dead(observer, peer)
        finally:
            self._corroborating.discard((observer, peer))

    def _quarantine_suspect_hop(self, observer: int, peer: int) -> None:
        """Route around the first *suspect* edge on the path to *peer*.

        Walks the current route and skips over hops whose far end is a
        watched peer with zero suspicion — their answered probes are
        live evidence those edges carry traffic, so quarantining one
        would sever a working path on a misattributed loss (the classic
        way a detector turns one failure into two). The first hop with
        no such alibi is the suspect; where the topology allows, the
        fabric reroutes around it.
        """
        routing = self.cluster.network.routing
        try:
            path = routing.path(observer, peer)
        except TopologyError:
            return
        for a, b in zip(path, path[1:]):
            if (
                b != peer
                and (observer, b) in self._watches
                and self.suspicion.get((observer, b), 0) == 0
            ):
                continue  # far end demonstrably reachable; edge cleared
            if routing.quarantine_edge(a, b):
                self.quarantined.add((min(a, b), max(a, b)))
                self.events.append(
                    (self.sim.now, "quarantine",
                     f"edge {a}-{b} rerouted (suspect on {observer}->{peer})")
                )
            else:
                self.events.append(
                    (self.sim.now, "quarantine_refused",
                     f"edge {a}-{b} is a cut edge")
                )
            return

    def _declare_dead(self, observer: int, peer: int) -> None:
        if peer in self.confirmed_dead:
            return
        if observer in self.isolated:
            # self-fenced: an isolated observer's evidence is void
            self.events.append(
                (self.sim.now, "suppressed",
                 f"isolated observer {observer} may not declare {peer}")
            )
            return
        self.confirmed_dead.add(peer)
        self.events.append(
            (self.sim.now, "dead",
             f"node {peer} declared dead by observer {observer}")
        )
        degrade_donor(self.cluster, peer)
        if self.cfg.auto_recover:
            self.sim.process(
                rebalance.heal_sessions(
                    self.cluster, peer,
                    detected_ns=self.sim.now,
                    monitor=self,
                ),
                name=f"health.recover{peer}",
            )

    # -- rejoin healing -----------------------------------------------------
    def on_link_restored(self, a: int, b: int) -> None:
        """Fault-layer restore callback: heal what the outage broke.

        Clears the quarantine on the restored edge (traffic goes back
        to the native route instead of detouring around a healthy link
        forever) and, when any peers stand declared dead, schedules a
        revalidation pass that re-probes and re-admits the falsely
        declared.
        """
        if self._stopped:
            return
        edge = (min(a, b), max(a, b))
        if edge in self.quarantined:
            self.cluster.network.routing.clear_edge(a, b)
            self.quarantined.discard(edge)
            self.events.append(
                (self.sim.now, "unquarantined",
                 f"edge {a}-{b} restored; native route back")
            )
        if self.confirmed_dead and not self._revalidating:
            self._revalidating = True
            self.sim.process(
                self._revalidate_dead(), name="health.revalidate"
            )

    def _revalidate_dead(self) -> Generator:
        """Re-probe declared-dead peers after a link heal.

        A peer that answers was never dead — only unreachable — so its
        declaration is retracted. Actually-killed nodes (per the fault
        injector) are skipped: no probe can resurrect those.
        """
        cfg = self.cfg
        try:
            # let every restore of the same heal event land first
            yield self.sim.timeout(0)
            self._revalidating = False
            faults = self.cluster.faults
            for peer in sorted(self.confirmed_dead):
                if self._stopped:
                    return
                if faults is not None and peer in faults.dead_nodes:
                    continue
                observer = next(
                    (
                        n
                        for n in sorted(self.cluster.nodes)
                        if n != peer
                        and n not in self.confirmed_dead
                        and (faults is None or n not in faults.dead_nodes)
                    ),
                    None,
                )
                if observer is None:
                    continue
                node = self.cluster.node(observer)
                tag = node.rmc.tags.next()
                evt = node.os.expect_ack(tag)
                self.probes_sent += 1
                yield node.rmc.send_probe(peer, tag)
                yield self.sim.any_of(
                    [evt, self.sim.timeout(cfg.probe_timeout_ns)]
                )
                if not evt.triggered:
                    node.os.abandon_ack(tag)
                    continue
                self._readmit(peer)
        finally:
            self._revalidating = False

    def _readmit(self, peer: int) -> None:
        """Retract a false death declaration for *peer* (idempotent).

        The degraded-donor mark is lifted so the node can donate (and,
        if it truly fails later, be degraded) again, and borrowers
        still holding live leases from it resume watching — possible
        because every probe-loop exit surrenders its watch key.
        """
        if peer not in self.confirmed_dead:
            return
        self.confirmed_dead.discard(peer)
        self.cluster._degraded.discard(peer)
        # the retraction voids the evidence: drop every observer's
        # stale suspicion of the peer, else a watcher whose probe loop
        # exited on the declaration could never regain quorum
        for key in [k for k in self.suspicion if k[1] == peer]:
            del self.suspicion[key]
        self.events.append(
            (self.sim.now, "readmitted",
             f"node {peer} answered a revalidation probe; "
             "declaration retracted")
        )
        for node in self.cluster.nodes.values():
            for res in node.reservations.held.values():
                if res.donor_node == peer:
                    self.watch(node.node_id, peer)

    def _on_lease_expired(
        self, borrower: int, reservation: "Reservation"
    ) -> None:
        state = self.cluster.node(borrower).reservations.lease_states.get(
            reservation.prefixed_start
        )
        kind = (
            "lease_fenced" if state is LeaseState.FENCED else "lease_expired"
        )
        self.events.append(
            (self.sim.now, kind,
             f"borrower {borrower} lost lease "
             f"{reservation.prefixed_start:#x} on donor "
             f"{reservation.donor_node}")
        )
        expire_lease(self.cluster, borrower, reservation)
