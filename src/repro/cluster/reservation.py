"""Requester side of the remote-memory reservation protocol (Fig. 4).

The sequence the paper walks through:

1. the borrower's OS notices it is short of memory and picks a donor,
2. a *reserve* control message travels over the fabric,
3. the donor pins a contiguous range of its donation pool and answers
   with the range's start address, **prefix-stamped** with its node id,
4. the borrower writes prefixed translations into its page tables —
   after which plain loads/stores reach the memory with no software.

Software is on the *reservation* path only, never on the access path,
so generous OS costs here are faithful to the design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.errors import ReservationError
from repro.ht.packet import Packet

__all__ = ["Reservation", "ReservationClient"]


@dataclass(frozen=True)
class Reservation:
    """A borrower-held lease on remote memory."""

    donor_node: int
    #: prefixed physical start address (usable directly in page tables)
    prefixed_start: int
    size: int

    def contains(self, prefixed_addr: int) -> bool:
        return (
            self.prefixed_start
            <= prefixed_addr
            < self.prefixed_start + self.size
        )


class ReservationClient:
    """Issues reserve/release exchanges on behalf of one node's OS."""

    def __init__(self, oslite, rmc) -> None:
        self.oslite = oslite
        self.rmc = rmc
        self.node_id = oslite.node_id
        #: leases held, keyed by prefixed start address
        self.held: dict[int, Reservation] = {}
        #: leases lost to donor crashes (release becomes a no-op)
        self.revoked: dict[int, Reservation] = {}
        #: starts of leases released normally (repeat release is a no-op)
        self._released: set[int] = set()

    def reserve(self, donor_node: int, size: int) -> Generator:
        """Borrow *size* bytes from *donor_node*.

        A simulation process: ``res = yield from client.reserve(...)``;
        returns a :class:`Reservation` or raises
        :class:`~repro.errors.ReservationError` if the donor declines.
        """
        if donor_node == self.node_id:
            raise ReservationError(
                "a node must not reserve from itself (overlapped segment)"
            )
        if size <= 0:
            raise ReservationError(f"reservation size must be positive: {size}")
        tag = self.rmc.tags.next()
        ack_evt = self.oslite.expect_ack(tag)
        try:
            yield self.rmc.send_ctrl(
                donor_node, tag=tag, kind="reserve", size=size
            )
            ack: Packet = yield ack_evt
        except BaseException:
            # interrupted mid-exchange: the donor may still answer (and
            # may already have pinned memory for us) — hand the orphaned
            # tag to the OS so the late ack is unwound, not leaked
            self.oslite.abandon_ack(tag)
            raise
        if not ack.meta["ok"]:
            raise ReservationError(
                f"donor node {donor_node} declined: {ack.meta.get('error')}"
            )
        reservation = Reservation(
            donor_node=donor_node,
            prefixed_start=ack.meta["prefixed_start"],
            size=ack.meta["size"],
        )
        self.held[reservation.prefixed_start] = reservation
        return reservation

    def release(self, reservation: Reservation) -> Generator:
        """Return a lease to its donor.

        Idempotent for leases already released (a borrower may retry
        after an interrupt) and for leases revoked by a donor crash
        (there is nobody left to tell); raises only for a lease this
        node never held.
        """
        start = reservation.prefixed_start
        if start in self._released or start in self.revoked:
            return None
        if start not in self.held:
            raise ReservationError(
                f"node {self.node_id} does not hold a lease at {start:#x}"
            )
        tag = self.rmc.tags.next()
        ack_evt = self.oslite.expect_ack(tag)
        try:
            yield self.rmc.send_ctrl(
                reservation.donor_node,
                tag=tag,
                kind="release",
                prefixed_start=start,
            )
            ack: Packet = yield ack_evt
        except BaseException:
            self.oslite.abandon_ack(tag)
            raise
        if not ack.meta["ok"]:
            raise ReservationError(f"release failed: {ack.meta!r}")
        del self.held[start]
        self._released.add(start)
        return None

    def revoke_donor(self, donor_node: int) -> list[Reservation]:
        """Drop every lease held from a crashed *donor_node*.

        The memory is gone — no fabric exchange is possible or needed.
        The leases move to :attr:`revoked` so a later ``release`` is a
        clean no-op. Returns the revoked leases.
        """
        lost = [
            r for r in self.held.values() if r.donor_node == donor_node
        ]
        for r in lost:
            del self.held[r.prefixed_start]
            self.revoked[r.prefixed_start] = r
        return lost
