"""Requester side of the remote-memory reservation protocol (Fig. 4).

The sequence the paper walks through:

1. the borrower's OS notices it is short of memory and picks a donor,
2. a *reserve* control message travels over the fabric,
3. the donor pins a contiguous range of its donation pool and answers
   with the range's start address, **prefix-stamped** with its node id,
4. the borrower writes prefixed translations into its page tables —
   after which plain loads/stores reach the memory with no software.

Software is on the *reservation* path only, never on the access path,
so generous OS costs here are faithful to the design.

**Lease lifecycle.** With the health subsystem armed, a reservation is
a *finite lease* moving through one state machine::

    ACTIVE --renew timer--> RENEWING --ack ok-->  ACTIVE
                            RENEWING --timeout--> GRACE  (slow donor?)
                            RENEWING --nack---->  EXPIRED
    GRACE  --retry ok---->  ACTIVE
    GRACE  --grace spent->  EXPIRED
    any live state --release--> RELEASED
    any live state --donor crash--> REVOKED
    any live state --stale epoch--> FENCED

EXPIRED / REVOKED / RELEASED / FENCED are terminal. Revocation (PR 4's
donor death) is now one path through the same machine instead of a
special case. The GRACE window is what distinguishes a *slow* donor
(renewals time out but eventually land) from a *dead* one (the grace
budget runs out and the lease expires).

**Epochs.** Every grant the donor hands out carries a monotonically
increasing *epoch*; the borrower's reservation records it and (with
``HealthConfig.epoch_fencing``) every remote request is stamped with
it. After the donor reclaims and possibly re-grants the range, the old
epoch no longer matches — the donor *fences* the access (NACK with
``reason="fenced"``) and the borrower's lease lands in FENCED, torn
down through the same expiry path as EXPIRED. This is what stops a
healed minority borrower from silently corrupting re-granted memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.errors import ReservationError
from repro.ht.packet import Packet

__all__ = ["Reservation", "ReservationClient", "LeaseState"]


class LeaseState(enum.Enum):
    """Borrower-side lifecycle state of one reservation."""

    ACTIVE = "active"
    RENEWING = "renewing"
    GRACE = "grace"
    EXPIRED = "expired"
    REVOKED = "revoked"
    RELEASED = "released"
    #: the donor fenced a stale-epoch access/renewal after reclaiming
    #: (and possibly re-granting) the range
    FENCED = "fenced"

    @property
    def terminal(self) -> bool:
        return self in (
            LeaseState.EXPIRED, LeaseState.REVOKED, LeaseState.RELEASED,
            LeaseState.FENCED,
        )


#: legal transitions; terminal states allow none
_TRANSITIONS: dict[LeaseState, tuple[LeaseState, ...]] = {
    LeaseState.ACTIVE: (
        LeaseState.RENEWING, LeaseState.REVOKED, LeaseState.RELEASED,
        LeaseState.FENCED,
    ),
    LeaseState.RENEWING: (
        LeaseState.ACTIVE, LeaseState.GRACE, LeaseState.EXPIRED,
        LeaseState.REVOKED, LeaseState.RELEASED, LeaseState.FENCED,
    ),
    LeaseState.GRACE: (
        LeaseState.RENEWING, LeaseState.EXPIRED,
        LeaseState.REVOKED, LeaseState.RELEASED, LeaseState.FENCED,
    ),
    LeaseState.EXPIRED: (),
    LeaseState.REVOKED: (),
    LeaseState.RELEASED: (),
    LeaseState.FENCED: (),
}


@dataclass(frozen=True)
class Reservation:
    """A borrower-held lease on remote memory."""

    donor_node: int
    #: prefixed physical start address (usable directly in page tables)
    prefixed_start: int
    size: int
    #: the donor-side grant generation this lease was issued under;
    #: stamped on remote requests when epoch fencing is armed
    epoch: int = 0

    def contains(self, prefixed_addr: int) -> bool:
        return (
            self.prefixed_start
            <= prefixed_addr
            < self.prefixed_start + self.size
        )


class ReservationClient:
    """Issues reserve/release exchanges on behalf of one node's OS."""

    def __init__(self, oslite, rmc) -> None:
        self.oslite = oslite
        self.rmc = rmc
        self.node_id = oslite.node_id
        #: leases held, keyed by prefixed start address
        self.held: dict[int, Reservation] = {}
        #: leases lost to donor crashes (release becomes a no-op)
        self.revoked: dict[int, Reservation] = {}
        #: starts of leases released normally (repeat release is a no-op)
        self._released: set[int] = set()
        #: lifecycle state per lease ever held, keyed by prefixed start
        self.lease_states: dict[int, LeaseState] = {}

    def epoch_of(self, prefixed_addr: int) -> Optional[int]:
        """Epoch of the live lease covering *prefixed_addr*, if any.

        The borrower-side half of the epoch fence: the RMC stamps this
        onto outgoing remote requests, so an access through a lease
        that expired (and whose range the donor may have re-granted)
        carries no epoch — or a stale one — and is fenced at the donor.
        """
        for reservation in self.held.values():
            if reservation.contains(prefixed_addr):
                return reservation.epoch
        return None

    def state_of(self, reservation: Reservation) -> LeaseState:
        try:
            return self.lease_states[reservation.prefixed_start]
        except KeyError:
            raise ReservationError(
                f"node {self.node_id} never held a lease at "
                f"{reservation.prefixed_start:#x}"
            ) from None

    def _transition(self, start: int, to: LeaseState) -> None:
        cur = self.lease_states[start]
        if cur is to:
            return
        if to not in _TRANSITIONS[cur]:
            raise ReservationError(
                f"illegal lease transition {cur.value} -> {to.value} "
                f"for lease at {start:#x}"
            )
        self.lease_states[start] = to

    def reserve(self, donor_node: int, size: int) -> Generator:
        """Borrow *size* bytes from *donor_node*.

        A simulation process: ``res = yield from client.reserve(...)``;
        returns a :class:`Reservation` or raises
        :class:`~repro.errors.ReservationError` if the donor declines.
        """
        if donor_node == self.node_id:
            raise ReservationError(
                "a node must not reserve from itself (overlapped segment)"
            )
        if size <= 0:
            raise ReservationError(f"reservation size must be positive: {size}")
        tag = self.rmc.tags.next()
        ack_evt = self.oslite.expect_ack(tag)
        try:
            yield self.rmc.send_ctrl(
                donor_node, tag=tag, kind="reserve", size=size
            )
            ack: Packet = yield ack_evt
        except BaseException:
            # interrupted mid-exchange: the donor may still answer (and
            # may already have pinned memory for us) — hand the orphaned
            # tag to the OS so the late ack is unwound, not leaked
            self.oslite.abandon_ack(tag)
            raise
        if not ack.meta["ok"]:
            raise ReservationError(
                f"donor node {donor_node} declined: {ack.meta.get('error')}"
            )
        reservation = Reservation(
            donor_node=donor_node,
            prefixed_start=ack.meta["prefixed_start"],
            size=ack.meta["size"],
            epoch=ack.meta.get("epoch", 0),
        )
        self.held[reservation.prefixed_start] = reservation
        self.lease_states[reservation.prefixed_start] = (  # simcheck: disable=SIM012 -- initial install: a fresh lease has no prior state to transition from
            LeaseState.ACTIVE
        )
        return reservation

    def release(self, reservation: Reservation) -> Generator:
        """Return a lease to its donor.

        Idempotent for leases already released (a borrower may retry
        after an interrupt) and for leases revoked by a donor crash
        (there is nobody left to tell); raises only for a lease this
        node never held.
        """
        start = reservation.prefixed_start
        if start in self._released or start in self.revoked:
            return None
        if start not in self.held:
            raise ReservationError(
                f"node {self.node_id} does not hold a lease at {start:#x}"
            )
        tag = self.rmc.tags.next()
        ack_evt = self.oslite.expect_ack(tag)
        try:
            yield self.rmc.send_ctrl(
                reservation.donor_node,
                tag=tag,
                kind="release",
                prefixed_start=start,
            )
            ack: Packet = yield ack_evt
        except BaseException:
            self.oslite.abandon_ack(tag)
            raise
        if not ack.meta["ok"]:
            raise ReservationError(f"release failed: {ack.meta!r}")
        del self.held[start]
        self._released.add(start)
        self._transition(start, LeaseState.RELEASED)
        return None

    def revoke_donor(self, donor_node: int) -> list[Reservation]:
        """Drop every lease held from a crashed *donor_node*.

        The memory is gone — no fabric exchange is possible or needed.
        The leases move to :attr:`revoked` so a later ``release`` is a
        clean no-op. Returns the revoked leases.
        """
        lost = [
            r for r in self.held.values() if r.donor_node == donor_node
        ]
        for r in lost:
            del self.held[r.prefixed_start]
            self.revoked[r.prefixed_start] = r
            self._transition(r.prefixed_start, LeaseState.REVOKED)
        return lost

    def expire(self, reservation: Reservation) -> None:
        """Mark a lease EXPIRED: renewals stopped landing for too long.

        Locally indistinguishable from revocation — the memory must be
        treated as gone (the donor may have reclaimed and re-granted
        it) — so the lease joins :attr:`revoked` and a later ``release``
        is a clean no-op. Idempotent; a no-op for leases that already
        reached a terminal state.
        """
        start = reservation.prefixed_start
        if start not in self.held:
            return
        if self.lease_states[start].terminal:
            return
        del self.held[start]
        self.revoked[start] = reservation
        self._transition(start, LeaseState.EXPIRED)

    def fence(self, reservation: Reservation) -> None:
        """Mark a lease FENCED: the donor rejected its epoch.

        The donor has already reclaimed (and possibly re-granted) the
        range, so like :meth:`expire` the memory must be treated as
        gone and the lease joins :attr:`revoked`. Idempotent; a no-op
        for leases that already reached a terminal state.
        """
        start = reservation.prefixed_start
        if start not in self.held:
            return
        if self.lease_states[start].terminal:
            return
        del self.held[start]
        self.revoked[start] = reservation
        self._transition(start, LeaseState.FENCED)

    def renew(self, reservation: Reservation, timeout_ns: float) -> Generator:
        """One renewal exchange; returns ``"ok"``/``"timeout"``/``"expired"``.

        ``"ok"``      — the donor extended the lease (back to ACTIVE).
        ``"timeout"`` — no answer within *timeout_ns*: the lease enters
                        GRACE; the caller retries against its grace
                        budget before giving up.
        ``"expired"`` — the donor nacked (grant gone) or the lease hit
                        a terminal state while the exchange was in
                        flight; no further renewals make sense.
        """
        sim = self.oslite.sim
        start = reservation.prefixed_start
        state = self.lease_states.get(start)
        if state is None or state.terminal:
            return "expired"
        self._transition(start, LeaseState.RENEWING)
        tag = self.rmc.tags.next()
        ack_evt = self.oslite.expect_ack(tag)
        try:
            yield self.rmc.send_ctrl(
                reservation.donor_node,
                tag=tag,
                kind="renew",
                prefixed_start=start,
                epoch=reservation.epoch,
            )
            yield sim.any_of([ack_evt, sim.timeout(timeout_ns)])
        except BaseException:
            self.oslite.abandon_ack(tag)
            raise
        # revocation may have raced the exchange (donor declared dead
        # while our renew was on the wire) — the terminal state wins
        if self.lease_states[start].terminal:
            if not ack_evt.triggered:
                self.oslite.abandon_ack(tag)
            return "expired"
        if not ack_evt.triggered:
            self.oslite.abandon_ack(tag)
            self._transition(start, LeaseState.GRACE)
            return "timeout"
        ack: Packet = ack_evt.value
        if not ack.meta["ok"]:
            if ack.meta.get("reason") == "fenced":
                # the donor's grant moved to a newer epoch under us —
                # distinct from EXPIRED so tests and recovery can tell
                # "we outlived the grace budget" from "we were fenced"
                self.fence(reservation)
            else:
                self.expire(reservation)
            return "expired"
        self._transition(start, LeaseState.ACTIVE)
        return "ok"

    def lease_daemon(
        self,
        reservation: Reservation,
        ttl_ns: float,
        margin_ns: float,
        grace_ns: float,
        *,
        timeout_ns: float,
        on_expired: Optional[Callable[[Reservation], None]] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> Generator:
        """Keep one lease alive: renew every ``ttl - margin`` ns.

        A renewal that times out enters the GRACE window and is retried
        every *timeout_ns* until the ``grace_ns`` budget is spent; then
        the lease is expired and *on_expired* fires (the health layer
        hooks recovery there). *stop* is polled after every sleep so
        the daemon winds down when the health subsystem is stopped —
        otherwise its periodic timer would keep the event queue alive
        forever.
        """
        if margin_ns >= ttl_ns:
            raise ReservationError("renew margin must be below the ttl")
        sim = self.oslite.sim
        start = reservation.prefixed_start
        while True:
            yield sim.timeout(ttl_ns - margin_ns)
            if stop is not None and stop():
                return
            state = self.lease_states.get(start)
            if state is None or state is not LeaseState.ACTIVE:
                return
            outcome = yield from self.renew(reservation, timeout_ns)
            retries = int(grace_ns // timeout_ns)
            while outcome == "timeout" and retries > 0:
                if stop is not None and stop():
                    return
                retries -= 1
                outcome = yield from self.renew(reservation, timeout_ns)
            if outcome == "ok":
                continue
            if outcome == "timeout":
                # grace budget spent with the donor still silent
                self.expire(reservation)
            if self.lease_states[start] in (
                LeaseState.EXPIRED, LeaseState.FENCED
            ):
                # a fenced lease is torn down through the same path:
                # the memory is gone either way
                if on_expired is not None:
                    on_expired(reservation)
            return
