"""Per-node operating-system model ("OS-lite").

The paper lists the OS work its full system needs (Section III):
hot-pluggable memory, cluster-wide knowledge of free memory, and the
reservation service that pins donated ranges. This module implements
those pieces at the level the evaluation requires:

* a physical **frame allocator** over the node's private memory,
* a **donation pool** — the slice of local memory set aside for the
  cluster shared pool (8 of 16 GB in the prototype), handed out as
  *contiguous, pinned* ranges to remote borrowers,
* the **reservation daemon**, a simulation process answering
  RESERVE/RELEASE control messages arriving through the RMC, stamping
  the node prefix onto granted start addresses (Fig. 4),
* the invariant the paper's correctness argument rests on: donated
  ranges are never handed to local processes and never swapped.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Generator, Optional

from repro.config import NodeConfig
from repro.errors import AllocationError, ReservationError
from repro.ht.packet import Packet
from repro.mem.addressmap import AddressMap
from repro.rmc.rmc import RMC
from repro.sim.engine import Simulator
from repro.units import PAGE_SIZE

__all__ = ["FreeList", "OSLite", "Grant"]

#: OS-side handling time for one reservation-protocol message. The
#: paper stresses this path is not time-critical — only loads/stores
#: are — so a generous software cost is faithful.
RESERVATION_SERVICE_NS: float = 15_000.0

#: Handling time for a liveness probe / its ack: answered in the RMC's
#: control firmware without touching allocator state, so it is far
#: cheaper than a reservation — heartbeats must not saturate the
#: control plane they are monitoring.
PROBE_SERVICE_NS: float = 500.0

#: Handling time for a lease renewal / its ack: a deadline-table update,
#: no pool mutation.
LEASE_SERVICE_NS: float = 2_000.0

#: Per-message-kind service cost; anything unlisted (the original
#: reserve/release exchanges and their acks) charges the full
#: reservation cost, so disarmed runs are timed exactly as before.
_SERVICE_NS: dict[str, float] = {
    "probe": PROBE_SERVICE_NS,
    "probe_ack": PROBE_SERVICE_NS,
    "renew": LEASE_SERVICE_NS,
    "renew_ack": LEASE_SERVICE_NS,
    # SWIM-style indirect probes are firmware-level like direct ones
    "ping_req": PROBE_SERVICE_NS,
    "ping_req_ack": PROBE_SERVICE_NS,
}


class FreeList:
    """First-fit contiguous range allocator over ``[base, base+size)``.

    Keeps free extents sorted by address and coalesces on release —
    enough machinery for both the private frame pool and the donation
    pool (the paper reserves *contiguous* physical zones, Fig. 4).
    """

    def __init__(self, base: int, size: int, align: int = PAGE_SIZE) -> None:
        if size <= 0:
            raise AllocationError(f"empty free list (size={size})")
        if align <= 0 or align & (align - 1):
            raise AllocationError(f"alignment must be a power of two: {align}")
        if base % align or size % align:
            raise AllocationError(
                f"base {base:#x} / size {size:#x} not aligned to {align:#x}"
            )
        self.base = base
        self.size = size
        self.align = align
        #: sorted list of (start, length) free extents
        self._free: list[tuple[int, int]] = [(base, size)]
        self.allocated_bytes = 0

    def alloc(self, size: int) -> int:
        """Allocate a contiguous aligned range; returns its start."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive: {size}")
        size = -(-size // self.align) * self.align  # round up
        for i, (start, length) in enumerate(self._free):
            if length >= size:
                if length == size:
                    del self._free[i]
                else:
                    self._free[i] = (start + size, length - size)
                self.allocated_bytes += size
                return start
        raise AllocationError(
            f"cannot allocate {size:#x} contiguous bytes "
            f"(free={self.free_bytes:#x}, largest={self.largest_extent:#x})"
        )

    def free(self, start: int, size: int) -> None:
        """Return a range; coalesces with adjacent free extents."""
        size = -(-size // self.align) * self.align
        if start < self.base or start + size > self.base + self.size:
            raise AllocationError(
                f"free of [{start:#x}, {start + size:#x}) outside pool"
            )
        for fstart, flen in self._free:
            if start < fstart + flen and fstart < start + size:
                raise AllocationError(
                    f"double free overlapping [{fstart:#x}, {fstart + flen:#x})"
                )
        insort(self._free, (start, size))
        self.allocated_bytes -= size
        # coalesce
        merged: list[tuple[int, int]] = []
        for extent in self._free:
            if merged and merged[-1][0] + merged[-1][1] == extent[0]:
                merged[-1] = (merged[-1][0], merged[-1][1] + extent[1])
            else:
                merged.append(extent)
        self._free = merged

    @property
    def free_bytes(self) -> int:
        return sum(length for _, length in self._free)

    @property
    def largest_extent(self) -> int:
        return max((length for _, length in self._free), default=0)


@dataclass(frozen=True)
class Grant:
    """A donated range pinned for a remote borrower."""

    borrower_node: int
    #: local (unprefixed) start address on the donor
    local_start: int
    size: int
    #: the same start address with the donor's prefix stamped on
    prefixed_start: int
    #: per-donor monotonically increasing grant generation; a borrower
    #: whose lease was reclaimed holds a stale epoch and (with epoch
    #: fencing armed) is refused by the donor RMC
    epoch: int = 0


class OSLite:
    """One node's OS: memory accounting + reservation daemon."""

    def __init__(
        self,
        sim: Simulator,
        config: NodeConfig,
        amap: AddressMap,
        node_id: int,
        rmc: RMC,
    ) -> None:
        self.sim = sim
        self.config = config
        self.amap = amap
        self.node_id = node_id
        self.rmc = rmc
        private = config.private_memory_bytes
        total = config.total_memory_bytes
        #: frames for local processes ("the OS boots with 8 GB")
        self.private_pool = FreeList(0, private)
        #: the donated slice joining the cluster shared pool
        self.donation_pool = FreeList(private, total - private)
        #: active grants keyed by local start address
        self.grants: dict[int, Grant] = {}
        #: next grant epoch (monotonic per donor, never reused, so any
        #: reclaim/re-grant of a range is visible as an epoch change)
        self._next_epoch = 1
        #: hot-removed donation ranges now serving local allocations
        self._reclaimed: dict[int, FreeList] = {}
        #: req_tag -> event; completed when the matching ack arrives
        self._pending_acks: dict[int, "object"] = {}
        #: tags abandoned by an interrupted requester; a late ack for
        #: one of these is unwound instead of treated as a protocol bug
        self._orphaned: set[int] = set()
        #: finite-lease state — ``None`` until :meth:`arm_leases`, so
        #: the grant path pays a single ``is not None`` check when
        #: leases are off (the zero-cost-when-disarmed discipline)
        self._lease_deadlines: Optional[dict[int, float]] = None
        self._lease_ttl = 0.0
        self._lease_grace = 0.0
        self._lease_stopped = False
        self._lease_is_down: Optional[object] = None
        #: (sim_ns, borrower, local_start) for every lease the expiry
        #: daemon reclaimed — the donor-side audit trail
        self.lease_reclaims: list[tuple[float, int, int]] = []
        self._daemon = sim.process(self._reservation_daemon(),
                                   name=f"os{node_id}.resd")

    # -- local allocation ---------------------------------------------------
    def alloc_local(self, size: int) -> int:
        """Allocate private local memory; returns a local phys address.

        Serves from the boot-time private pool first, then from any
        hot-removed ranges. Never touches the donation pool itself:
        donated memory "will never be accessed by processes being
        executed in the remote node" unless explicitly hot-removed.
        """
        try:
            return self.private_pool.alloc(size)
        except AllocationError:
            for pool in self._reclaimed.values():
                try:
                    return pool.alloc(size)
                except AllocationError:
                    continue
            raise

    def free_local(self, start: int, size: int) -> None:
        if start < self.private_pool.size:
            self.private_pool.free(start, size)
            return
        for pool in self._reclaimed.values():
            if pool.base <= start < pool.base + pool.size:
                pool.free(start, size)
                return
        raise AllocationError(
            f"node {self.node_id}: free of {start:#x} outside every "
            "local pool"
        )

    @property
    def local_free_bytes(self) -> int:
        return self.private_pool.free_bytes

    @property
    def donated_free_bytes(self) -> int:
        return self.donation_pool.free_bytes

    # -- memory hot-plug (Section III's kernel modification) ---------------
    def hot_remove_donation(self, size: int) -> int:
        """Reclaim *size* bytes from the donation pool into private use.

        Models the hot-remove/hot-add kernel support the paper lists as
        a system requirement: when local pressure grows, un-donated
        memory can be pulled back for local processes. Only memory not
        currently granted to a borrower can move (grants are pinned).
        Returns the local start address of the reclaimed range, which
        :meth:`alloc_local` can now serve from.
        """
        try:
            start = self.donation_pool.alloc(size)
        except AllocationError as exc:
            raise ReservationError(
                f"node {self.node_id} cannot hot-remove {size:#x} bytes: "
                f"{exc}"
            ) from exc
        self._reclaimed[start] = FreeList(start, size)
        return start

    def hot_add_donation(self, start: int) -> None:
        """Return a fully-idle hot-removed range to the donation pool."""
        pool = self._reclaimed.get(start)
        if pool is None:
            raise ReservationError(
                f"node {self.node_id}: no hot-removed range at {start:#x}"
            )
        if pool.allocated_bytes:
            raise ReservationError(
                f"node {self.node_id}: range at {start:#x} still has "
                f"{pool.allocated_bytes:#x} bytes in local use"
            )
        del self._reclaimed[start]
        self.donation_pool.free(start, pool.size)

    @property
    def hot_removed_bytes(self) -> int:
        return sum(p.size for p in self._reclaimed.values())

    # -- donor side of the reservation protocol ----------------------------
    def grant_reservation(self, borrower_node: int, size: int) -> Grant:
        """Pin a contiguous donated range for *borrower_node* (Fig. 4).

        The returned grant carries the prefixed start address the
        borrower will write into its page table.
        """
        if borrower_node == self.node_id:
            raise ReservationError(
                f"node {self.node_id} asked itself for memory — loopback "
                "reservations are forbidden (the overlapped segment)"
            )
        try:
            start = self.donation_pool.alloc(size)
        except AllocationError as exc:
            raise ReservationError(
                f"node {self.node_id} cannot donate {size:#x} bytes: {exc}"
            ) from exc
        grant = Grant(
            borrower_node=borrower_node,
            local_start=start,
            size=size,
            prefixed_start=self.amap.encode(self.node_id, start),
            epoch=self._next_epoch,
        )
        self._next_epoch += 1
        self.grants[start] = grant
        if self._lease_deadlines is not None:
            self._lease_deadlines[start] = (
                self.sim.now + self._lease_ttl + self._lease_grace
            )
        return grant

    def fence_admit(
        self, local_start: int, size: int, epoch: Optional[int]
    ) -> bool:
        """Donor-side epoch fence: may this remote access proceed?

        Called by the RMC server path (when armed via
        ``HealthConfig.epoch_fencing``) before admitting a request.
        Accesses to private memory are not lease-governed and always
        pass; an access into the donation pool passes only when a
        current grant covers the whole range *and* the request's epoch
        matches that grant — a stale epoch means the range was
        reclaimed (and possibly re-granted) since the requester's lease
        was issued, so the access must be refused, not retried.
        """
        if local_start + size <= self.donation_pool.base:
            return True
        for start, grant in self.grants.items():
            if start <= local_start and (
                local_start + size <= start + grant.size
            ):
                return epoch == grant.epoch
        return False

    def release_reservation(self, local_start: int) -> None:
        try:
            grant = self.grants.pop(local_start)
        except KeyError:
            raise ReservationError(
                f"node {self.node_id}: no grant at {local_start:#x}"
            ) from None
        if self._lease_deadlines is not None:
            self._lease_deadlines.pop(local_start, None)
        self.donation_pool.free(grant.local_start, grant.size)

    # -- donor-side finite leases ------------------------------------------
    def arm_leases(
        self, ttl_ns: float, grace_ns: float, *, is_down=None
    ) -> None:
        """Make every grant a finite lease that must be renewed.

        A grant's deadline starts at ``now + ttl + grace`` and each
        successful renewal pushes it out again; the expiry daemon
        reclaims grants whose borrowers stopped renewing (borrower
        death is the donor-side dual of donor death). *is_down* is an
        optional zero-arg callable polled by the daemon so a killed
        donor stops reclaiming — a dead node runs no OS.
        """
        if ttl_ns <= 0:
            raise ReservationError("lease ttl must be positive when arming")
        if self._lease_deadlines is not None:
            raise ReservationError(
                f"node {self.node_id}: leases already armed"
            )
        self._lease_deadlines = {
            start: self.sim.now + ttl_ns + grace_ns for start in self.grants
        }
        self._lease_ttl = ttl_ns
        self._lease_grace = grace_ns
        self._lease_is_down = is_down
        self.sim.process(
            self._lease_expiry_daemon(), name=f"os{self.node_id}.leased"
        )

    def stop_leases(self) -> None:
        """Stop the expiry daemon after its next tick (drains the run)."""
        self._lease_stopped = True

    def _lease_expiry_daemon(self) -> Generator:
        period = self._lease_ttl / 2
        while True:
            yield self.sim.timeout(period)
            if self._lease_stopped:
                return
            down = self._lease_is_down
            if down is not None and down():
                return
            assert self._lease_deadlines is not None
            for start in sorted(self._lease_deadlines):
                if self._lease_deadlines[start] > self.sim.now:
                    continue
                grant = self.grants.get(start)
                if grant is None:  # pragma: no cover - release cleans up
                    del self._lease_deadlines[start]
                    continue
                self.lease_reclaims.append(
                    (self.sim.now, grant.borrower_node, start)
                )
                self.release_reservation(start)

    # -- requester-side ack plumbing ---------------------------------------
    def expect_ack(self, req_tag: int):
        """Register interest in the ack for an outgoing request tag.

        Returns an event whose value will be the ack packet. Used by
        :class:`repro.cluster.reservation.ReservationClient`.
        """
        if req_tag in self._pending_acks:
            raise ReservationError(f"duplicate pending ack tag {req_tag}")
        evt = self.sim.event()
        self._pending_acks[req_tag] = evt
        return evt

    def abandon_ack(self, req_tag: int) -> None:
        """Forget a pending ack whose requester was interrupted.

        The exchange may still be in flight: the donor can have pinned
        memory already. If the ack later arrives, the daemon unwinds it
        (releasing any granted reservation) instead of raising on an
        unexpected tag — no pending-ack entry and no donor-side pin
        survive the interrupt.
        """
        if self._pending_acks.pop(req_tag, None) is not None:
            self._orphaned.add(req_tag)

    # -- the daemon --------------------------------------------------------
    def _reservation_daemon(self) -> Generator:
        """Route control messages: donor requests are serviced here;
        acks complete the local requester's pending operation."""
        while True:
            msg: Packet = yield self.rmc.ctrl_in.get()
            kind = msg.meta.get("kind")
            yield self.sim.timeout(_SERVICE_NS.get(kind, RESERVATION_SERVICE_NS))
            if kind == "reserve":
                yield from self._handle_reserve(msg)
            elif kind == "release":
                yield from self._handle_release(msg)
            elif kind == "probe":
                yield self.rmc.send_ctrl(
                    msg.src,
                    kind="probe_ack",
                    req_tag=msg.tag,
                    ok=True,
                    seq=msg.meta.get("seq", 0),
                )
            elif kind == "renew":
                yield from self._handle_renew(msg)
            elif kind == "ping_req":
                # the indirect probe takes a probe timeout to resolve;
                # run it beside the daemon so one slow suspect cannot
                # stall this node's whole control plane
                self.sim.process(
                    self._handle_ping_req(msg),
                    name=f"os{self.node_id}.pingreq",
                )
            elif kind in ("reserve_ack", "release_ack",
                          "probe_ack", "renew_ack", "ping_req_ack"):
                req_tag = msg.meta["req_tag"]
                evt = self._pending_acks.pop(req_tag, None)
                if evt is not None:
                    evt.succeed(msg)
                elif req_tag in self._orphaned:
                    self._orphaned.discard(req_tag)
                    if kind == "reserve_ack" and msg.meta["ok"]:
                        # the requester died mid-reserve but the donor
                        # pinned memory: give it straight back
                        self.sim.process(
                            self._release_stray(msg),
                            name=f"os{self.node_id}.stray",
                        )
                else:
                    raise ReservationError(
                        f"node {self.node_id}: unexpected ack "
                        f"{msg.meta!r}"
                    )
            else:
                raise ReservationError(
                    f"node {self.node_id}: unknown control message "
                    f"{msg.meta!r}"
                )

    def _handle_reserve(self, msg: Packet) -> Generator:
        size = msg.meta["size"]
        try:
            grant = self.grant_reservation(msg.src, size)
            yield self.rmc.send_ctrl(
                msg.src,
                kind="reserve_ack",
                req_tag=msg.tag,
                ok=True,
                prefixed_start=grant.prefixed_start,
                size=grant.size,
                epoch=grant.epoch,
            )
        except ReservationError as exc:
            yield self.rmc.send_ctrl(
                msg.src,
                kind="reserve_ack",
                req_tag=msg.tag,
                ok=False,
                error=str(exc),
            )

    def _handle_renew(self, msg: Packet) -> Generator:
        """Extend a lease's deadline; nack when the grant is gone.

        A nack tells the borrower its lease already expired (the grant
        was reclaimed or released) — the borrower-side state machine
        moves the lease to EXPIRED and triggers recovery, exactly as if
        the donor had died. A renewal carrying a *stale epoch* — the
        range was reclaimed and re-granted while the borrower was cut
        off — is nacked with ``reason="fenced"`` so the old tenant's
        renewal can never extend the new tenant's lease.
        """
        prefixed = msg.meta["prefixed_start"]
        local = self.amap.strip_node(prefixed)
        grant = self.grants.get(local)
        epoch = msg.meta.get("epoch")
        fenced = (
            grant is not None
            and epoch is not None
            and epoch != grant.epoch
        )
        ok = grant is not None and not fenced
        if ok and self._lease_deadlines is not None:
            self._lease_deadlines[local] = (
                self.sim.now + self._lease_ttl + self._lease_grace
            )
        if fenced:
            yield self.rmc.send_ctrl(
                msg.src, kind="renew_ack", req_tag=msg.tag, ok=False,
                reason="fenced",
            )
        else:
            yield self.rmc.send_ctrl(
                msg.src, kind="renew_ack", req_tag=msg.tag, ok=ok
            )

    def _handle_release(self, msg: Packet) -> Generator:
        prefixed = msg.meta["prefixed_start"]
        local = self.amap.strip_node(prefixed)
        # Idempotent on the wire: a borrower may retry after losing an
        # ack, or a stray-release may race a normal one — releasing a
        # grant that is already gone acks ok rather than wedging the
        # protocol on a ReservationError.
        if local in self.grants:
            self.release_reservation(local)
        yield self.rmc.send_ctrl(
            msg.src, kind="release_ack", req_tag=msg.tag, ok=True
        )

    def _handle_ping_req(self, msg: Packet) -> Generator:
        """Probe *target* on the requester's behalf (SWIM ping-req).

        An observer that keeps missing a suspect cannot tell a dead
        peer from a broken path; a helper on a different route can.
        The helper sends its own direct probe, waits up to the
        requester-supplied timeout, and reports ``reachable`` in the
        ``ping_req_ack`` either way.
        """
        target = msg.meta["target"]
        timeout_ns = msg.meta["timeout_ns"]
        reachable = target == self.node_id
        if not reachable:
            tag = self.rmc.tags.next()
            evt = self.expect_ack(tag)
            yield self.rmc.send_probe(target, tag)
            yield self.sim.any_of([evt, self.sim.timeout(timeout_ns)])
            reachable = evt.triggered
            if not reachable:
                self.abandon_ack(tag)
        yield self.rmc.send_ctrl(
            msg.src,
            kind="ping_req_ack",
            req_tag=msg.tag,
            ok=True,
            target=target,
            reachable=reachable,
        )

    def _release_stray(self, ack: Packet) -> Generator:
        """Return a grant whose requester abandoned the exchange."""
        tag = self.rmc.tags.next()
        evt = self.expect_ack(tag)
        yield self.rmc.send_ctrl(
            ack.src,
            tag=tag,
            kind="release",
            prefixed_start=ack.meta["prefixed_start"],
        )
        yield evt  # consume the release_ack so nothing dangles
