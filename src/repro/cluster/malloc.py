"""The malloc-interposition layer (Section IV-B, last paragraph).

The prototype interposes a shared library on an *unmodified, already
compiled* application: ``malloc``/``free`` are intercepted, remote
memory is reserved, and the application receives an ordinary pointer —
every subsequent load/store is a plain memory instruction.

:class:`RegionAllocator` is that library's analogue for one simulated
process: it owns the process's virtual address space, carves local
allocations out of the node's private pool, carves remote allocations
out of reservations attached to the node's memory region, and writes
the (possibly prefixed) translations into the page table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.oslite import FreeList, OSLite
from repro.cluster.reservation import Reservation
from repro.errors import AllocationError
from repro.mem.addressmap import AddressMap
from repro.mem.paging import PTE, AddressSpace

__all__ = ["Placement", "RegionAllocator", "Allocation"]


class Placement(enum.Enum):
    """Where an allocation's frames must come from."""

    LOCAL = "local"
    REMOTE = "remote"
    #: local until the private pool runs dry, then remote — the
    #: behaviour an OS kernel would implement transparently
    AUTO = "auto"


@dataclass(frozen=True)
class Allocation:
    """One live allocation."""

    vaddr: int
    size: int
    phys_start: int
    remote: bool
    #: index of the remote arena, or -1 for local
    arena: int


@dataclass
class _Arena:
    freelist: FreeList
    donor_node: int
    #: the donor crashed: no new placements, frees are bookkeeping-only
    dead: bool = False


class RegionAllocator:
    """Per-process allocator over a node's memory region."""

    def __init__(
        self,
        oslite: OSLite,
        address_space: AddressSpace,
        amap: AddressMap,
    ) -> None:
        self.oslite = oslite
        self.aspace = address_space
        self.amap = amap
        self._remote_arenas: list[_Arena] = []
        self._allocations: dict[int, Allocation] = {}
        self.local_bytes = 0
        self.remote_bytes = 0

    # -- growing the region ------------------------------------------------
    def add_reservation(self, reservation: Reservation) -> int:
        """Attach a remote lease as an arena; returns its index."""
        arena = _Arena(
            freelist=FreeList(
                reservation.prefixed_start,
                reservation.size,
                align=self.aspace.page_bytes,
            ),
            donor_node=reservation.donor_node,
        )
        self._remote_arenas.append(arena)
        return len(self._remote_arenas) - 1

    @property
    def remote_free_bytes(self) -> int:
        return sum(
            a.freelist.free_bytes for a in self._remote_arenas if not a.dead
        )

    def revoke_donor(self, donor: int) -> int:
        """Handle *donor*'s crash: poison its pages, retire its arenas.

        The paper is explicit that remote memory adds no fault
        tolerance — the data on a dead donor is simply gone. Mappings
        stay in the page table but are marked poisoned, so a touch
        raises :class:`~repro.errors.RemoteAccessError` instead of
        fabricating stale data, and new allocations never land on the
        dead node. Returns the number of live allocations lost.
        """
        lost = 0
        page = self.aspace.page_bytes
        for arena in self._remote_arenas:
            if arena.donor_node == donor:
                arena.dead = True
        for alloc in self._allocations.values():
            if not alloc.remote:
                continue
            if self._remote_arenas[alloc.arena].donor_node != donor:
                continue
            for i in range(-(-alloc.size // page)):
                self.aspace.poison_page(alloc.vaddr + i * page, donor=donor)
            lost += 1
        return lost

    def expire_reservation(self, reservation: Reservation) -> int:
        """Retire the arena backed by an *expired* lease.

        The donor is (presumed) alive but the lease lapsed — the donor
        may have reclaimed and re-granted the range, so the frames must
        be treated exactly like a crashed donor's: the arena dies and
        the allocations on it are poisoned. Returns allocations lost.
        """
        lost = 0
        page = self.aspace.page_bytes
        expired: set[int] = set()
        for idx, arena in enumerate(self._remote_arenas):
            if (
                arena.freelist.base == reservation.prefixed_start
                and arena.donor_node == reservation.donor_node
                and not arena.dead
            ):
                arena.dead = True
                expired.add(idx)
        for alloc in self._allocations.values():
            if alloc.remote and alloc.arena in expired:
                for i in range(-(-alloc.size // page)):
                    self.aspace.poison_page(
                        alloc.vaddr + i * page, donor=reservation.donor_node
                    )
                lost += 1
        return lost

    # -- recovery hooks (driven by cluster/rebalance.py) -------------------
    def lost_allocations(self, donor: int) -> list[Allocation]:
        """Live allocations stranded on *donor*'s dead arenas, by vaddr."""
        return sorted(
            (
                a
                for a in self._allocations.values()
                if a.remote
                and self._remote_arenas[a.arena].dead
                and self._remote_arenas[a.arena].donor_node == donor
            ),
            key=lambda a: a.vaddr,
        )

    def rebind_allocation(self, vaddr: int, arena_idx: int) -> int:
        """Move an allocation's frames onto the (healthy) arena *arena_idx*.

        Carves replacement frames out of the new arena and updates the
        allocation record; the caller re-materializes page contents and
        rewrites the PTEs. Returns the new physical start address.
        """
        alloc = self.allocation_at(vaddr)
        if not alloc.remote:
            raise AllocationError(
                f"allocation at {vaddr:#x} is local — nothing to rebind"
            )
        arena = self._remote_arenas[arena_idx]
        if arena.dead:
            raise AllocationError(
                f"cannot rebind {vaddr:#x} onto dead arena {arena_idx}"
            )
        page = self.aspace.page_bytes
        rounded = -(-alloc.size // page) * page
        phys = arena.freelist.alloc(rounded)
        self._allocations[vaddr] = Allocation(
            vaddr=vaddr,
            size=alloc.size,
            phys_start=phys,
            remote=True,
            arena=arena_idx,
        )
        return phys

    # -- the interposed entry points -----------------------------------------
    def malloc(self, size: int, placement: Placement = Placement.AUTO) -> int:
        """Allocate *size* bytes; returns the virtual address.

        Exactly what the interposed ``malloc`` does: pick frames, map
        pages (prefixed for remote frames), hand back a plain pointer.
        """
        if size <= 0:
            raise AllocationError(f"malloc size must be positive: {size}")
        page = self.aspace.page_bytes
        num_pages = -(-size // page)

        if placement is Placement.LOCAL:
            return self._alloc_local(size, num_pages)
        if placement is Placement.REMOTE:
            return self._alloc_remote(size, num_pages)
        try:
            return self._alloc_local(size, num_pages)
        except AllocationError:
            return self._alloc_remote(size, num_pages)

    def free(self, vaddr: int) -> None:
        """Release an allocation made by :meth:`malloc`."""
        try:
            alloc = self._allocations.pop(vaddr)
        except KeyError:
            raise AllocationError(f"free of unknown pointer {vaddr:#x}") from None
        page = self.aspace.page_bytes
        num_pages = -(-alloc.size // page)
        for i in range(num_pages):
            self.aspace.unmap_page(vaddr + i * page)
        rounded = num_pages * page
        if alloc.remote:
            arena = self._remote_arenas[alloc.arena]
            if not arena.dead:
                # a dead donor's frames cannot return to any freelist —
                # the memory no longer exists; only the accounting drops
                arena.freelist.free(alloc.phys_start, rounded)
            self.remote_bytes -= rounded
        else:
            self.oslite.free_local(alloc.phys_start, rounded)
            self.local_bytes -= rounded

    def allocation_at(self, vaddr: int) -> Allocation:
        try:
            return self._allocations[vaddr]
        except KeyError:
            raise AllocationError(f"no allocation at {vaddr:#x}") from None

    # -- internals ----------------------------------------------------------
    def _alloc_local(self, size: int, num_pages: int) -> int:
        phys = self.oslite.alloc_local(num_pages * self.aspace.page_bytes)
        vaddr = self._map(phys, num_pages, remote=False)
        self._allocations[vaddr] = Allocation(
            vaddr=vaddr, size=size, phys_start=phys, remote=False, arena=-1
        )
        self.local_bytes += num_pages * self.aspace.page_bytes
        return vaddr

    def _alloc_remote(self, size: int, num_pages: int) -> int:
        rounded = num_pages * self.aspace.page_bytes
        for idx, arena in enumerate(self._remote_arenas):
            if arena.dead:
                continue
            try:
                phys = arena.freelist.alloc(rounded)
            except AllocationError:
                continue
            vaddr = self._map(phys, num_pages, remote=True)
            self._allocations[vaddr] = Allocation(
                vaddr=vaddr, size=size, phys_start=phys, remote=True, arena=idx
            )
            self.remote_bytes += rounded
            return vaddr
        raise AllocationError(
            f"no remote arena can satisfy {rounded:#x} bytes "
            f"(remote free={self.remote_free_bytes:#x}); "
            "reserve more memory from a donor first"
        )

    def _map(self, phys_start: int, num_pages: int, remote: bool) -> int:
        page = self.aspace.page_bytes
        vaddr = self.aspace.reserve_virtual(num_pages)
        for i in range(num_pages):
            self.aspace.map_page(
                vaddr + i * page,
                PTE(
                    phys_page=phys_start + i * page,
                    writable=True,
                    remote=remote,
                    pinned=remote,  # donated frames are never swapped
                ),
            )
        return vaddr
