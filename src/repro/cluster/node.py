"""One cluster node: sockets, caches, cores, memory controllers, RMC,
and its OS-lite — a complete coherency domain (Fig. 2(b)).

Address layout inside the node window: socket *i*'s memory controller
serves ``[i * dram.capacity, (i+1) * dram.capacity)``; every address at
or above the window (i.e. carrying a node prefix) falls through the
crossbar to the RMC, exactly like the BAR-based forwarding the paper
describes.
"""

from __future__ import annotations

from repro.config import NodeConfig, RMCConfig
from repro.ht.crossbar import Crossbar
from repro.ht.packet import TagAllocator
from repro.mem.addressmap import AddressMap
from repro.mem.backing import BackingStore
from repro.mem.cache import Cache
from repro.mem.coherence import CoherenceDomain
from repro.mem.controller import MemoryController
from repro.noc.network import Network
from repro.rmc.rmc import RMC
from repro.cluster.core import Core, FunctionalMemory
from repro.cluster.oslite import OSLite
from repro.cluster.reservation import ReservationClient
from repro.sim.engine import Simulator

__all__ = ["Node"]


class Node:
    """A motherboard: the unit of coherency in the proposed system."""

    def __init__(
        self,
        sim: Simulator,
        config: NodeConfig,
        rmc_config: RMCConfig,
        amap: AddressMap,
        node_id: int,
        network: Network,
        tags: TagAllocator,
        functional_mem: FunctionalMemory | None = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.amap = amap
        self.name = f"node{node_id}"

        #: all of this node's physical memory (local addressing, no prefix)
        self.backing = BackingStore(config.total_memory_bytes)

        self.crossbar = Crossbar(sim, name=f"{self.name}.xbar", node_id=node_id)

        #: one memory controller per socket; contiguous per-socket
        #: slices by default, striped if node interleaving is enabled
        self.mcs: list[MemoryController] = []
        for socket in range(config.sockets):
            mc = MemoryController(
                sim,
                config.dram,
                self.backing,
                base=socket * config.dram.capacity_bytes,
                name=f"{self.name}.mc{socket}",
                interleave=(
                    (config.interleave_bytes, socket, config.sockets)
                    if config.interleave_bytes
                    else None
                ),
            )
            self.mcs.append(mc)
            self.crossbar.attach(mc)

        #: the Remote Memory Controller (crossbar fallback: any address
        #: with a non-zero prefix lands here)
        self.rmc = RMC(
            sim, rmc_config, amap, node_id, network, self.crossbar, tags,
            # prefetch bursts obey the same controller-slice alignment
            # as core-issued bursts
            burst_align_bytes=(
                config.interleave_bytes or config.dram.capacity_bytes
            ),
        )
        self.crossbar.attach(self.rmc, fallback=True)

        #: per-core private caches + the node-wide coherence domain
        self.caches = [
            Cache(config.cache, name=f"{self.name}.l2c{i}")
            for i in range(config.num_cores)
        ]
        self.coherence = CoherenceDomain(
            self.caches, broadcast=True, name=f"{self.name}.dom",
            debug=sim.debug,
        )

        self.cores = [
            Core(
                sim,
                config.core,
                rmc_config,
                amap,
                node_id,
                core_id=i,
                crossbar=self.crossbar,
                tags=tags,
                cache=self.caches[i],
                functional_mem=functional_mem,
                coherence=self.coherence,
                coherence_idx=i,
                # bursts must stay within one controller's slice: the
                # interleave stripe if striping is on, else the
                # per-socket contiguous slice
                burst_align_bytes=(
                    config.interleave_bytes or config.dram.capacity_bytes
                ),
            )
            for i in range(config.num_cores)
        ]

        self.os = OSLite(sim, config, amap, node_id, self.rmc)
        self.reservations = ReservationClient(self.os, self.rmc)

    def mc_for(self, local_addr: int) -> MemoryController:
        """The socket controller serving a local address."""
        for mc in self.mcs:
            if mc.owns(local_addr):
                return mc
        raise LookupError(
            f"{self.name}: no controller owns local address {local_addr:#x}"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Node {self.node_id}: {self.config.num_cores} cores, "
            f"{self.config.total_memory_bytes >> 30} GiB>"
        )
