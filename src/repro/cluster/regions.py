"""Memory regions (Section III-A, Fig. 1).

A *memory region* is the single coherency domain a node's processes
live in: one or more portions of physical main memory, possibly spread
over several nodes, accessible only from the owning node's processors.
There are always exactly as many regions as nodes; what changes
dynamically is each region's extent.

Invariants enforced here (the paper's correctness argument):

* regions never overlap — a physical byte belongs to at most one
  region, so no two coherency domains ever share cacheable data;
* a region always contains its node's private memory;
* remote segments always come from a donor's donation pool and carry
  the donor's prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RegionError
from repro.mem.addressmap import AddressMap

__all__ = ["Segment", "MemoryRegion", "RegionManager"]


@dataclass(frozen=True)
class Segment:
    """A contiguous physical slice inside one region.

    ``start`` is a *prefixed* physical address for remote segments and
    a plain local address (prefix 0) for the home segment.
    """

    owner_node: int
    start: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise RegionError(f"segment size must be positive: {self.size}")
        if self.owner_node < 1:
            raise RegionError(f"invalid owner node {self.owner_node}")

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


@dataclass
class MemoryRegion:
    """The memory region of one node."""

    home_node: int
    segments: list[Segment] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(s.size for s in self.segments)

    @property
    def remote_bytes(self) -> int:
        return sum(s.size for s in self.segments if s.owner_node != self.home_node)

    @property
    def donor_nodes(self) -> list[int]:
        return sorted(
            {s.owner_node for s in self.segments if s.owner_node != self.home_node}
        )

    def contains(self, addr: int) -> bool:
        return any(s.contains(addr) for s in self.segments)


class RegionManager:
    """Cluster-wide region bookkeeping + invariant checking."""

    def __init__(self, amap: AddressMap, num_nodes: int) -> None:
        if num_nodes < 1:
            raise RegionError("need at least one node")
        self.amap = amap
        self.num_nodes = num_nodes
        self.regions: dict[int, MemoryRegion] = {
            n: MemoryRegion(home_node=n) for n in range(1, num_nodes + 1)
        }
        #: per-region damage map written during recovery: home node ->
        #: {prefixed line address on the dead donor -> donor id}. A line
        #: appears here iff it was dirty-and-lost — written by the
        #: tenant after its last recoverable snapshot, so no source
        #: could re-materialize it. Everything else healed cleanly.
        self.damage: dict[int, dict[int, int]] = {}

    def region_of(self, node: int) -> MemoryRegion:
        try:
            return self.regions[node]
        except KeyError:
            raise RegionError(f"no region for node {node}") from None

    # -- mutation ---------------------------------------------------------
    def add_home_segment(self, node: int, start: int, size: int) -> Segment:
        """Register a node's own private memory as part of its region."""
        seg = Segment(owner_node=node, start=start, size=size)
        self._check_no_overlap(seg, exclude_region=None)
        self.region_of(node).segments.append(seg)
        return seg

    def add_remote_segment(
        self, node: int, donor: int, prefixed_start: int, size: int
    ) -> Segment:
        """Extend *node*'s region with a donated slice of *donor*."""
        if donor == node:
            raise RegionError(
                f"node {node} cannot hold a prefixed segment of itself "
                "(the overlapped segment must stay unused)"
            )
        if self.amap.node_of(prefixed_start) != donor:
            raise RegionError(
                f"segment start {prefixed_start:#x} does not carry "
                f"donor {donor}'s prefix"
            )
        seg = Segment(owner_node=donor, start=prefixed_start, size=size)
        self._check_no_overlap(seg, exclude_region=None)
        self.region_of(node).segments.append(seg)
        return seg

    def drop_donor_segments(self, donor: int) -> int:
        """Remove every remote segment a crashed *donor* was backing.

        The memory is gone, not reclaimable, so the segments simply
        vanish from the borrowing regions; the donor's own home segment
        stays (its region still describes the dead hardware). Returns
        the number of segments dropped.
        """
        dropped = 0
        for region in self.regions.values():
            if region.home_node == donor:
                continue
            keep = [s for s in region.segments if s.owner_node != donor]
            dropped += len(region.segments) - len(keep)
            region.segments = keep
        return dropped

    def remove_segment(self, node: int, segment: Segment) -> None:
        region = self.region_of(node)
        try:
            region.segments.remove(segment)
        except ValueError:
            raise RegionError(
                f"region {node} does not contain segment {segment}"
            ) from None

    def record_damage(self, node: int, prefixed_line: int, donor: int) -> None:
        """Record one dirty-and-lost line in *node*'s region damage map."""
        self.damage.setdefault(node, {})[prefixed_line] = donor

    def clear_damage(self, node: int, prefixed_line: int) -> None:
        """Drop a damage entry (the tenant overwrote the whole line)."""
        lines = self.damage.get(node)
        if lines is not None:
            lines.pop(prefixed_line, None)
            if not lines:
                del self.damage[node]

    def damage_map(self, node: int) -> dict[int, int]:
        """A copy of *node*'s damage map (prefixed line -> donor)."""
        return dict(self.damage.get(node, {}))

    # -- queries ---------------------------------------------------------------
    def owner_region_of_addr(self, addr: int, accessing_node: int) -> MemoryRegion:
        """The region an access from *accessing_node* lands in.

        Raises :class:`RegionError` if the address lies outside the
        accessing node's region — the isolation property of Fig. 1.
        """
        region = self.region_of(accessing_node)
        if not region.contains(addr):
            raise RegionError(
                f"node {accessing_node} accessed {addr:#x} outside its region"
            )
        return region

    def check_invariants(self) -> None:
        """Regions are pairwise disjoint in *physical* space."""
        claimed: list[tuple[int, int, int, int]] = []  # (owner, lo, hi, region)
        for region in self.regions.values():
            for seg in region.segments:
                lo = (
                    self.amap.strip_node(seg.start)
                    if self.amap.node_of(seg.start)
                    else seg.start
                )
                claimed.append((seg.owner_node, lo, lo + seg.size, region.home_node))
        claimed.sort()
        for (o1, lo1, hi1, r1), (o2, lo2, hi2, r2) in zip(claimed, claimed[1:]):
            if o1 == o2 and lo2 < hi1:
                raise RegionError(
                    f"regions {r1} and {r2} overlap on node {o1}: "
                    f"[{lo1:#x},{hi1:#x}) vs [{lo2:#x},{hi2:#x})"
                )

    # -- internals ----------------------------------------------------------
    def _check_no_overlap(self, new: Segment, exclude_region) -> None:
        new_lo = (
            self.amap.strip_node(new.start)
            if self.amap.node_of(new.start)
            else new.start
        )
        new_hi = new_lo + new.size
        for region in self.regions.values():
            if region is exclude_region:
                continue
            for seg in region.segments:
                if seg.owner_node != new.owner_node:
                    continue
                lo = (
                    self.amap.strip_node(seg.start)
                    if self.amap.node_of(seg.start)
                    else seg.start
                )
                if new_lo < lo + seg.size and lo < new_hi:
                    raise RegionError(
                        f"new segment [{new_lo:#x},{new_hi:#x}) on node "
                        f"{new.owner_node} overlaps region {region.home_node}"
                    )
