"""Top-level cluster assembly and orchestration.

``Cluster(config)`` builds the whole prototype: the fabric, one
:class:`~repro.cluster.node.Node` per fabric position, the region
manager with every node's home segment, and the zero-time functional
memory view that cached accesses use for data.

The class also provides the *control-plane verbs* experiments call:

* :meth:`borrow` — run the reservation protocol so one node's region
  grows with memory from a donor,
* :meth:`session` — open a process-level view (allocator + address
  space + access helpers) on one node,
* :meth:`fn_read` / :meth:`fn_write` — functional cluster-wide memory
  access by prefixed physical address.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

import numpy as np

from repro.cluster import health as _health
from repro.cluster.node import Node
from repro.cluster.regions import RegionManager
from repro.cluster.reservation import Reservation
from repro.config import ClusterConfig, HealthConfig
from repro.errors import (
    AddressError,
    ConfigError,
    RemoteAccessError,
    ReservationError,
)
from repro.ht.packet import TagAllocator
from repro.mem.addressmap import DEFAULT_NODE_SHIFT, AddressMap
from repro.noc.network import Network
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector, FaultPlan

__all__ = ["Cluster"]


class Cluster:
    """The assembled 16-node (by default) prototype."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        *,
        debug: Optional[bool] = None,
        queue: str = "bucket",
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        cfg = self.config

        shift = max(
            DEFAULT_NODE_SHIFT,
            math.ceil(math.log2(cfg.node.total_memory_bytes)),
        )
        self.amap = AddressMap(node_shift=shift)
        if cfg.num_nodes > self.amap.max_nodes:
            raise ConfigError(
                f"{cfg.num_nodes} nodes exceed the {self.amap.max_nodes} "
                "addressable by the 14-bit prefix"
            )

        # debug=None consults REPRO_SANITIZE inside the Simulator; the
        # node then inherits the resolved value so every sanitizer in
        # one cluster is on or off together. `queue` selects the event
        # queue ("heapq" = reference spec) for differential replay tests.
        self.sim = Simulator(debug=debug, queue=queue)
        self.network = Network(self.sim, cfg.network)
        self.tags = TagAllocator()
        self.nodes: dict[int, Node] = {
            n: Node(
                self.sim,
                cfg.node,
                cfg.rmc,
                self.amap,
                node_id=n,
                network=self.network,
                tags=self.tags,
                functional_mem=self,
            )
            for n in range(1, cfg.num_nodes + 1)
        }

        self.regions = RegionManager(self.amap, cfg.num_nodes)
        for n in range(1, cfg.num_nodes + 1):
            self.regions.add_home_segment(
                n, 0, cfg.node.private_memory_bytes
            )

        #: fault injector, present only once :meth:`arm_faults` ran —
        #: a cluster that never arms one carries no failure machinery
        self.faults: Optional[FaultInjector] = None
        #: health monitor, present only once :meth:`arm_health` ran —
        #: same zero-cost-when-disarmed discipline as the fault layer
        self.health: Optional["_health.HealthMonitor"] = None
        #: donors already degraded (revoke/drop/poison ran), so the
        #: fault callback and a health declaration never double-degrade
        self._degraded: set[int] = set()
        #: sessions opened via :meth:`session`, so donor-death cleanup
        #: can reach every process's allocator and page table
        self._sessions: list = []

    # -- basic queries ------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    def node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ConfigError(f"no node {node_id} in this cluster") from None

    def hops(self, a: int, b: int) -> int:
        return self.network.hops(a, b)

    # -- functional cluster-wide memory (FunctionalMemory protocol) -------
    def _resolve(self, paddr: int) -> tuple[Node, int]:
        owner = self.amap.node_of(paddr)
        if owner == 0:
            raise AddressError(
                "functional access needs a prefixed address; local "
                "addresses are ambiguous at cluster scope"
            )
        return self.node(owner), self.amap.strip_node(paddr)

    def fn_read(self, paddr: int, size: int) -> bytes:
        """Zero-time read by prefixed physical address."""
        node, local = self._resolve(paddr)
        return node.backing.read(local, size)

    def fn_write(self, paddr: int, data: bytes) -> None:
        """Zero-time write by prefixed physical address."""
        node, local = self._resolve(paddr)
        node.backing.write(local, data)

    def fn_read_array(self, paddr: int, count: int, dtype) -> np.ndarray:
        """Zero-time typed read: a fresh writable array, one copy total."""
        node, local = self._resolve(paddr)
        return node.backing.read_array(local, count, np.dtype(dtype))

    def fn_view_array(self, paddr: int, count: int, dtype) -> "np.ndarray | None":
        """Zero-time, zero-copy read-only window over the owner's chunk
        storage, or ``None`` when the range has no contiguous buffer."""
        node, local = self._resolve(paddr)
        return node.backing.view_array(local, count, np.dtype(dtype))

    def fn_read_into(self, paddr: int, out) -> None:
        """Zero-time read into a caller buffer (one copy, no staging)."""
        node, local = self._resolve(paddr)
        node.backing.read_into(local, out)

    # -- control plane ---------------------------------------------------------
    def borrow(self, borrower: int, donor: int, size: int) -> Reservation:
        """Grow *borrower*'s region with *size* bytes from *donor*.

        Runs the full Fig. 4 exchange on the simulated fabric and
        registers the new segment with the region manager. Blocks the
        caller (drains the event heap) — reservation is control-plane
        work, not on any measured path.
        """
        reservation = self.sim.run_process(self.borrow_process(borrower, donor, size))
        return reservation

    def borrow_process(
        self, borrower: int, donor: int, size: int
    ) -> Generator:
        """Process form of :meth:`borrow`, composable inside experiments."""
        node = self.node(borrower)
        if self.faults is not None and donor in self.faults.dead_nodes:
            raise RemoteAccessError(
                f"node {donor} is dead; cannot borrow from it"
            )
        if self.health is not None and self.health.is_isolated(borrower):
            raise ReservationError(
                f"node {borrower} is isolated (below partition quorum); "
                "new borrows are self-fenced until it rejoins"
            )
        reservation = yield from node.reservations.reserve(donor, size)
        self.regions.add_remote_segment(
            borrower, donor, reservation.prefixed_start, reservation.size
        )
        self.regions.check_invariants()
        if self.health is not None and self.health.cfg.watch_on_borrow:
            self.health.on_new_lease(borrower, reservation)
        return reservation

    def give_back(self, borrower: int, reservation: Reservation) -> None:
        """Shrink a region: release the lease and drop the segment."""
        node = self.node(borrower)
        region = self.regions.region_of(borrower)
        segment = next(
            s
            for s in region.segments
            if s.start == reservation.prefixed_start
        )
        self.sim.run_process(node.reservations.release(reservation))
        self.regions.remove_segment(borrower, segment)
        self.regions.check_invariants()

    def session(self, node_id: int) -> "Session":
        """Open a process-level view on *node_id*."""
        from repro.cluster.api import Session

        sess = Session(self, node_id)
        self._sessions.append(sess)
        return sess

    # -- failure model ------------------------------------------------------
    def arm_faults(self, plan: Optional[FaultPlan] = None) -> FaultInjector:
        """Attach a :class:`~repro.sim.faults.FaultInjector` to the fabric.

        Until this is called no component holds a fault hook, so the
        simulation is bit-identical to a build without the failure
        model. Call once, before :meth:`~repro.sim.engine.Simulator.run`
        if the plan has a timeline.
        """
        if self.faults is not None:
            raise ConfigError("fault injection is already armed")
        injector = FaultInjector(
            self.sim, plan if plan is not None else FaultPlan()
        )
        injector.attach_network(self.network)
        for node in self.nodes.values():
            injector.attach_node(node)
        injector.on_node_death(self._on_node_death)
        injector.on_link_restore(self._on_link_restore)
        self.faults = injector
        return injector

    def arm_health(
        self, config: Optional[HealthConfig] = None
    ) -> "_health.HealthMonitor":
        """Attach failure detection (and, with a TTL, finite leases).

        Until this is called no heartbeat, lease, or recovery machinery
        exists anywhere — the simulation is bit-identical to a build
        without the health subsystem. With ``lease_ttl_ns`` set, every
        donor's grants become finite leases and every borrower runs a
        renewal daemon per lease. Leases already held when arming are
        picked up.
        """
        if self.health is not None:
            raise ConfigError("the health subsystem is already armed")
        cfg = config if config is not None else self.config.health
        monitor = _health.HealthMonitor(self, cfg)
        self.health = monitor
        if cfg.lease_ttl_ns:
            for n, node in self.nodes.items():
                node.os.arm_leases(
                    cfg.lease_ttl_ns,
                    cfg.lease_grace_ns,
                    is_down=lambda nid=n: (
                        self.faults is not None
                        and nid in self.faults.dead_nodes
                    ),
                )
        if cfg.watch_on_borrow:
            for node in self.nodes.values():
                for start in sorted(node.reservations.held):
                    monitor.on_new_lease(
                        node.node_id, node.reservations.held[start]
                    )
        if cfg.epoch_fencing:
            # borrower RMCs stamp outgoing requests with the lease's
            # grant epoch; donor RMCs NACK any request whose epoch no
            # longer matches the current grant (stale borrower after a
            # reclaim/re-grant). Hooks stay None until armed, so the
            # fenceless hot path is untouched.
            for node in self.nodes.values():
                node.rmc._lease_epochs = node.reservations
                node.rmc._fence = node.os
        return monitor

    def kill_node(self, node_id: int) -> None:
        """Fail-stop *node_id* immediately (arms a default plan if needed)."""
        self.node(node_id)
        if self.faults is None:
            self.arm_faults()
        self.faults.kill_node(node_id)

    def fail_link(self, a: int, b: int) -> None:
        """Take the *a*–*b* link down, both directions."""
        self.node(a)
        self.node(b)
        if self.faults is None:
            self.arm_faults()
        self.faults.fail_link(a, b)

    def _on_node_death(self, dead: int) -> None:
        """Fault-injector death callback: delegate to the health layer.

        The degradation logic (revoke leases, drop segments, poison
        pages) lives in :func:`repro.cluster.health.degrade_donor` so
        the injector callback and a heartbeat-driven declaration share
        one idempotent path.
        """
        _health.degrade_donor(self, dead)

    def _on_link_restore(self, a: int, b: int) -> None:
        """Fault-injector restore callback: let the health layer heal.

        Disarmed health means nothing to do — quarantines and death
        declarations only exist once :meth:`arm_health` ran.
        """
        if self.health is not None:
            self.health.on_link_restored(a, b)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Cluster {self.num_nodes} nodes, "
            f"{self.config.shared_pool_bytes >> 30} GiB shared pool>"
        )
