"""Cluster assembly: nodes, cores, the OS-lite, memory regions, the
remote reservation protocol, the malloc-interposition layer and the
user-facing session API.

This package glues the substrates (:mod:`repro.sim`, :mod:`repro.ht`,
:mod:`repro.noc`, :mod:`repro.mem`, :mod:`repro.rmc`) into the system
of Fig. 1: one coherency domain per node, each domain's *memory region*
dynamically extendable with memory borrowed from other nodes.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.core import Core
from repro.cluster.node import Node
from repro.cluster.oslite import OSLite
from repro.cluster.regions import MemoryRegion, RegionManager, Segment
from repro.cluster.reservation import Reservation, ReservationClient
from repro.cluster.malloc import Placement, RegionAllocator
from repro.cluster.api import Session
from repro.cluster.discipline import RemoteAccessDiscipline

__all__ = [
    "Cluster",
    "Node",
    "Core",
    "OSLite",
    "MemoryRegion",
    "RegionManager",
    "Segment",
    "Reservation",
    "ReservationClient",
    "RegionAllocator",
    "Placement",
    "Session",
    "RemoteAccessDiscipline",
]
