"""Process-level user API.

A :class:`Session` is what an application "running on" one node sees:
a virtual address space, an interposed allocator, and load/store
operations issued through real cores. It is the public surface the
examples and the packet-level benchmarks program against.

Every access method exists in two forms:

* ``g_*`` generators, composable inside simulation processes (the
  multi-threaded benchmarks spawn one process per thread);
* plain methods that run the generator to completion synchronously —
  convenient for single-threaded scripts and tests.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.cluster.malloc import Placement, RegionAllocator
from repro.cluster.reservation import Reservation
from repro.errors import ConfigError
from repro.mem.paging import AddressSpace
from repro.units import PAGE_SIZE

__all__ = ["Session"]

#: Extra latency charged for a TLB miss (page-table walk through the
#: cache hierarchy; constant, as the walk hits local memory).
TLB_WALK_NS: float = 60.0


class Session:
    """An application bound to one node of the cluster."""

    def __init__(self, cluster, node_id: int, page_bytes: int = PAGE_SIZE) -> None:
        self.cluster = cluster
        self.node = cluster.node(node_id)
        self.node_id = node_id
        self.sim = cluster.sim
        self.aspace = AddressSpace(
            page_bytes=page_bytes, name=f"proc@n{node_id}"
        )
        self.allocator = RegionAllocator(
            self.node.os, self.aspace, cluster.amap
        )
        #: optional Section IV-B discipline checker (attach_discipline)
        self.discipline = None
        #: recoverable snapshots: allocation vaddr -> {page vaddr: bytes}.
        #: Stands in for the owner's backing store / swap tier — the
        #: clean copy recovery re-materializes pages from. Pages written
        #: after their last checkpoint are dirty-and-lost if the donor
        #: dies (reported precisely, per line).
        self._shadow: dict[int, dict[int, bytes]] = {}

    # -- memory management ------------------------------------------------
    def borrow_remote(self, donor: int, size: int) -> Reservation:
        """Grow this node's region and make the lease allocatable."""
        reservation = self.cluster.borrow(self.node_id, donor, size)
        self.allocator.add_reservation(reservation)
        return reservation

    def malloc(self, size: int, placement: Placement = Placement.AUTO) -> int:
        """Interposed malloc; returns a virtual address."""
        return self.allocator.malloc(size, placement)

    def free(self, vaddr: int) -> None:
        self.allocator.free(vaddr)
        self._shadow.pop(vaddr, None)

    # -- recoverable snapshots --------------------------------------------
    def checkpoint(self, vaddr: int) -> None:
        """Snapshot an allocation's current contents as its clean copy.

        Untimed and functional — the analogue of the page finding its
        way to the owner's swap tier / backing store, which benchmarks
        leave unmeasured. After a donor death, recovery re-materializes
        the allocation's pages from this copy; lines the application
        dirtied *after* the snapshot are precisely the dirty-and-lost
        ones.
        """
        alloc = self.allocator.allocation_at(vaddr)
        page = self.aspace.page_bytes
        pages: dict[int, bytes] = {}
        # walk the page table directly: a snapshot must not perturb the
        # TLB or the walk counters a timed run depends on
        for i in range(-(-alloc.size // page)):
            pv = vaddr + i * page
            pte = self.aspace.page_table.lookup(pv // page)
            assert pte is not None, "checkpoint of unmapped page"
            pages[pv] = self.cluster.fn_read(
                self._core(0)._prefixed(pte.phys_page), page
            )
        self._shadow[vaddr] = pages

    def shadow_of(self, vaddr: int) -> "dict[int, bytes] | None":
        """The last checkpoint of the allocation at *vaddr*, if any."""
        return self._shadow.get(vaddr)

    # -- optional runtime checking ---------------------------------------
    def attach_discipline(self, strict: bool = True):
        """Monitor cached remote accesses for Section IV-B violations.

        Returns the attached
        :class:`~repro.cluster.discipline.RemoteAccessDiscipline`; in
        strict mode any stale-data hazard (e.g. two cores writing a
        remote line without an intervening flush) raises immediately —
        the simulation analogue of running under a race detector.
        """
        from repro.cluster.discipline import RemoteAccessDiscipline

        self.discipline = RemoteAccessDiscipline(
            amap=self.cluster.amap,
            local_node=self.node_id,
            strict=strict,
            line_bytes=self.node.config.cache.line_bytes,
        )
        return self.discipline

    def _check(self, core: int, paddr: int, size: int, is_write: bool,
               cached: bool) -> None:
        if self.discipline is not None and cached:
            self.discipline.on_access(core, paddr, size, is_write)

    # -- generator access (for use inside simulation processes) ------------
    def g_read(
        self,
        vaddr: int,
        size: int,
        core: int = 0,
        cached: bool = True,
        batch: bool = True,
    ) -> Generator:
        """Load *size* bytes at virtual *vaddr* via core *core*."""
        c = self._core(core)
        chunks: list[bytes] = []
        for part_vaddr, part_size in self._split(vaddr, size):
            trans = self.aspace.translate(part_vaddr)
            if trans.pte.damaged:
                self.aspace.check_lost(part_vaddr, part_size)
            if not trans.tlb_hit:
                yield self.sim.timeout(TLB_WALK_NS)
            self._check(core, trans.phys_addr, part_size, False, cached)
            if cached:
                data = yield from c.cached_read(trans.phys_addr, part_size, batch=batch)
            else:
                data = yield from c.read(trans.phys_addr, part_size)
            chunks.append(data)
        return b"".join(chunks)

    def g_write(
        self,
        vaddr: int,
        data: bytes,
        core: int = 0,
        cached: bool = True,
        batch: bool = True,
    ) -> Generator:
        """Store *data* at virtual *vaddr* via core *core*."""
        c = self._core(core)
        offset = 0
        for part_vaddr, part_size in self._split(vaddr, len(data)):
            trans = self.aspace.translate(part_vaddr)
            if trans.pte.damaged:
                self.aspace.heal_lost(part_vaddr, part_size)
            if not trans.tlb_hit:
                yield self.sim.timeout(TLB_WALK_NS)
            part = data[offset : offset + part_size]
            self._check(core, trans.phys_addr, len(part), True, cached)
            if cached:
                yield from c.cached_write(trans.phys_addr, part, batch=batch)
            else:
                yield from c.write(trans.phys_addr, part)
            offset += part_size
        return None

    def g_coherent_read(
        self, vaddr: int, size: int, core: int = 0, batch: bool = True
    ) -> Generator:
        """Load shared intra-node data through the MESI domain.

        Only valid for locally-backed allocations: the prototype keeps
        no coherence for the RMC-mapped range, so a remote address here
        raises (Section IV-B's restriction, enforced)."""
        c = self._core(core)
        chunks: list[bytes] = []
        for part_vaddr, part_size in self._split(vaddr, size):
            trans = self.aspace.translate(part_vaddr)
            if not trans.tlb_hit:
                yield self.sim.timeout(TLB_WALK_NS)
            data = yield from c.coherent_read(trans.phys_addr, part_size, batch=batch)
            chunks.append(data)
        return b"".join(chunks)

    def g_coherent_write(
        self, vaddr: int, data: bytes, core: int = 0, batch: bool = True
    ) -> Generator:
        """Store shared intra-node data through the MESI domain."""
        c = self._core(core)
        offset = 0
        for part_vaddr, part_size in self._split(vaddr, len(data)):
            trans = self.aspace.translate(part_vaddr)
            if not trans.tlb_hit:
                yield self.sim.timeout(TLB_WALK_NS)
            yield from c.coherent_write(
                trans.phys_addr, data[offset : offset + part_size], batch=batch
            )
            offset += part_size
        return None

    def coherent_read(
        self, vaddr: int, size: int, core: int = 0, batch: bool = True
    ) -> bytes:
        return self.sim.run_process(
            self.g_coherent_read(vaddr, size, core, batch)
        )

    def coherent_write(
        self, vaddr: int, data: bytes, core: int = 0, batch: bool = True
    ) -> None:
        self.sim.run_process(self.g_coherent_write(vaddr, data, core, batch))

    def g_flush(self, core: int = 0, batch: bool = True) -> Generator:
        """Flush the core's cache (before a parallel read-only phase)."""
        yield from self._core(core).flush_cache(batch=batch)
        if self.discipline is not None:
            self.discipline.on_flush(core)
        return None

    # -- synchronous convenience --------------------------------------------
    def read(
        self,
        vaddr: int,
        size: int,
        core: int = 0,
        cached: bool = True,
        batch: bool = True,
    ) -> bytes:
        return self.sim.run_process(
            self.g_read(vaddr, size, core, cached, batch)
        )

    def write(
        self,
        vaddr: int,
        data: bytes,
        core: int = 0,
        cached: bool = True,
        batch: bool = True,
    ) -> None:
        self.sim.run_process(self.g_write(vaddr, data, core, cached, batch))

    def read_u64(self, vaddr: int, core: int = 0, cached: bool = True) -> int:
        return int.from_bytes(self.read(vaddr, 8, core, cached), "little")

    def write_u64(
        self, vaddr: int, value: int, core: int = 0, cached: bool = True
    ) -> None:
        self.write(
            vaddr, int(value).to_bytes(8, "little", signed=False), core, cached
        )

    def bulk_write(self, vaddr: int, data: bytes, core: int = 0) -> None:
        """Untimed functional write — for population/setup phases that
        benchmarks deliberately leave unmeasured (accessor protocol of
        the packet-tier workloads)."""
        data = bytes(data)
        c = self._core(core)
        offset = 0
        for part_vaddr, part_size in self._split(vaddr, len(data)):
            trans = self.aspace.translate(part_vaddr)
            if trans.pte.damaged:
                self.aspace.heal_lost(part_vaddr, part_size)
            self.cluster.fn_write(
                c._prefixed(trans.phys_addr), data[offset : offset + part_size]
            )
            offset += part_size

    def write_array(self, vaddr: int, values: np.ndarray, core: int = 0) -> None:
        self.write(vaddr, np.ascontiguousarray(values).tobytes(), core)

    def read_array(
        self, vaddr: int, count: int, dtype, core: int = 0
    ) -> np.ndarray:
        dt = np.dtype(dtype)
        raw = self.read(vaddr, count * dt.itemsize, core)
        return np.frombuffer(raw, dtype=dt).copy()

    # -- internals ----------------------------------------------------------
    def _core(self, idx: int):
        try:
            return self.node.cores[idx]
        except IndexError:
            raise ConfigError(
                f"node {self.node_id} has no core {idx} "
                f"(0..{len(self.node.cores) - 1})"
            ) from None

    def _split(self, vaddr: int, size: int):
        """Split an access at page boundaries (translations differ)."""
        page = self.aspace.page_bytes
        out = []
        pos = vaddr
        end = vaddr + size
        while pos < end:
            boundary = (pos // page + 1) * page
            take = min(end, boundary) - pos
            out.append((pos, take))
            pos += take
        return out
