"""Process-level user API.

A :class:`Session` is what an application "running on" one node sees:
a virtual address space, an interposed allocator, and load/store
operations issued through real cores. It is the public surface the
examples and the packet-level benchmarks program against.

Every access method exists in two forms:

* ``g_*`` generators, composable inside simulation processes (the
  multi-threaded benchmarks spawn one process per thread);
* plain methods that run the generator to completion synchronously —
  convenient for single-threaded scripts and tests.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.cluster.malloc import Placement, RegionAllocator
from repro.cluster.reservation import Reservation
from repro.errors import ConfigError
from repro.mem.paging import AddressSpace
from repro.units import PAGE_SIZE

__all__ = ["Session", "COLUMN_WINDOW_BYTES"]

#: Extra latency charged for a TLB miss (page-table walk through the
#: cache hierarchy; constant, as the walk hits local memory).
TLB_WALK_NS: float = 60.0

#: Default window for whole-column streaming: one backing-store chunk,
#: so a chunk-aligned column serves every full window as a zero-copy
#: view (DESIGN.md §13).
COLUMN_WINDOW_BYTES: int = 64 * 1024


class Session:
    """An application bound to one node of the cluster."""

    def __init__(self, cluster, node_id: int, page_bytes: int = PAGE_SIZE) -> None:
        self.cluster = cluster
        self.node = cluster.node(node_id)
        self.node_id = node_id
        self.sim = cluster.sim
        self.aspace = AddressSpace(
            page_bytes=page_bytes, name=f"proc@n{node_id}"
        )
        self.allocator = RegionAllocator(
            self.node.os, self.aspace, cluster.amap
        )
        #: optional Section IV-B discipline checker (attach_discipline)
        self.discipline = None
        #: recoverable snapshots: allocation vaddr -> {page vaddr: bytes}.
        #: Stands in for the owner's backing store / swap tier — the
        #: clean copy recovery re-materializes pages from. Pages written
        #: after their last checkpoint are dirty-and-lost if the donor
        #: dies (reported precisely, per line).
        self._shadow: dict[int, dict[int, bytes]] = {}

    # -- memory management ------------------------------------------------
    def borrow_remote(self, donor: int, size: int) -> Reservation:
        """Grow this node's region and make the lease allocatable."""
        reservation = self.cluster.borrow(self.node_id, donor, size)
        self.allocator.add_reservation(reservation)
        return reservation

    def malloc(self, size: int, placement: Placement = Placement.AUTO) -> int:
        """Interposed malloc; returns a virtual address."""
        return self.allocator.malloc(size, placement)

    def free(self, vaddr: int) -> None:
        self.allocator.free(vaddr)
        self._shadow.pop(vaddr, None)

    # -- recoverable snapshots --------------------------------------------
    def checkpoint(self, vaddr: int) -> None:
        """Snapshot an allocation's current contents as its clean copy.

        Untimed and functional — the analogue of the page finding its
        way to the owner's swap tier / backing store, which benchmarks
        leave unmeasured. After a donor death, recovery re-materializes
        the allocation's pages from this copy; lines the application
        dirtied *after* the snapshot are precisely the dirty-and-lost
        ones.
        """
        alloc = self.allocator.allocation_at(vaddr)
        page = self.aspace.page_bytes
        pages: dict[int, bytes] = {}
        # walk the page table directly: a snapshot must not perturb the
        # TLB or the walk counters a timed run depends on
        for i in range(-(-alloc.size // page)):
            pv = vaddr + i * page
            pte = self.aspace.page_table.lookup(pv // page)
            assert pte is not None, "checkpoint of unmapped page"
            pages[pv] = self.cluster.fn_read(
                self._core(0)._prefixed(pte.phys_page), page
            )
        self._shadow[vaddr] = pages

    def shadow_of(self, vaddr: int) -> "dict[int, bytes] | None":
        """The last checkpoint of the allocation at *vaddr*, if any."""
        return self._shadow.get(vaddr)

    # -- optional runtime checking ---------------------------------------
    def attach_discipline(self, strict: bool = True):
        """Monitor cached remote accesses for Section IV-B violations.

        Returns the attached
        :class:`~repro.cluster.discipline.RemoteAccessDiscipline`; in
        strict mode any stale-data hazard (e.g. two cores writing a
        remote line without an intervening flush) raises immediately —
        the simulation analogue of running under a race detector.
        """
        from repro.cluster.discipline import RemoteAccessDiscipline

        self.discipline = RemoteAccessDiscipline(
            amap=self.cluster.amap,
            local_node=self.node_id,
            strict=strict,
            line_bytes=self.node.config.cache.line_bytes,
        )
        return self.discipline

    def _check(self, core: int, paddr: int, size: int, is_write: bool,
               cached: bool) -> None:
        if self.discipline is not None and cached:
            self.discipline.on_access(core, paddr, size, is_write)

    # -- generator access (for use inside simulation processes) ------------
    def g_read(
        self,
        vaddr: int,
        size: int,
        core: int = 0,
        cached: bool = True,
        batch: bool = True,
    ) -> Generator:
        """Load *size* bytes at virtual *vaddr* via core *core*."""
        c = self._core(core)
        chunks: list[bytes] = []
        for part_vaddr, part_size in self._split(vaddr, size):
            trans = self.aspace.translate(part_vaddr)
            if trans.pte.damaged:
                self.aspace.check_lost(part_vaddr, part_size)
            if not trans.tlb_hit:
                yield self.sim.timeout(TLB_WALK_NS)
            self._check(core, trans.phys_addr, part_size, False, cached)
            if cached:
                data = yield from c.cached_read(trans.phys_addr, part_size, batch=batch)
            else:
                data = yield from c.read(trans.phys_addr, part_size)
            chunks.append(data)
        return b"".join(chunks)

    def g_write(
        self,
        vaddr: int,
        data: bytes,
        core: int = 0,
        cached: bool = True,
        batch: bool = True,
    ) -> Generator:
        """Store *data* at virtual *vaddr* via core *core*."""
        c = self._core(core)
        offset = 0
        for part_vaddr, part_size in self._split(vaddr, len(data)):
            trans = self.aspace.translate(part_vaddr)
            if trans.pte.damaged:
                self.aspace.heal_lost(part_vaddr, part_size)
            if not trans.tlb_hit:
                yield self.sim.timeout(TLB_WALK_NS)
            part = data[offset : offset + part_size]
            self._check(core, trans.phys_addr, len(part), True, cached)
            if cached:
                yield from c.cached_write(trans.phys_addr, part, batch=batch)
            else:
                yield from c.write(trans.phys_addr, part)
            offset += part_size
        return None

    def g_coherent_read(
        self, vaddr: int, size: int, core: int = 0, batch: bool = True
    ) -> Generator:
        """Load shared intra-node data through the MESI domain.

        Only valid for locally-backed allocations: the prototype keeps
        no coherence for the RMC-mapped range, so a remote address here
        raises (Section IV-B's restriction, enforced)."""
        c = self._core(core)
        chunks: list[bytes] = []
        for part_vaddr, part_size in self._split(vaddr, size):
            trans = self.aspace.translate(part_vaddr)
            if not trans.tlb_hit:
                yield self.sim.timeout(TLB_WALK_NS)
            data = yield from c.coherent_read(trans.phys_addr, part_size, batch=batch)
            chunks.append(data)
        return b"".join(chunks)

    def g_coherent_write(
        self, vaddr: int, data: bytes, core: int = 0, batch: bool = True
    ) -> Generator:
        """Store shared intra-node data through the MESI domain."""
        c = self._core(core)
        offset = 0
        for part_vaddr, part_size in self._split(vaddr, len(data)):
            trans = self.aspace.translate(part_vaddr)
            if not trans.tlb_hit:
                yield self.sim.timeout(TLB_WALK_NS)
            yield from c.coherent_write(
                trans.phys_addr, data[offset : offset + part_size], batch=batch
            )
            offset += part_size
        return None

    def coherent_read(
        self, vaddr: int, size: int, core: int = 0, batch: bool = True
    ) -> bytes:
        return self.sim.run_process(
            self.g_coherent_read(vaddr, size, core, batch)
        )

    def coherent_write(
        self, vaddr: int, data: bytes, core: int = 0, batch: bool = True
    ) -> None:
        self.sim.run_process(self.g_coherent_write(vaddr, data, core, batch))

    def g_flush(self, core: int = 0, batch: bool = True) -> Generator:
        """Flush the core's cache (before a parallel read-only phase)."""
        yield from self._core(core).flush_cache(batch=batch)
        if self.discipline is not None:
            self.discipline.on_flush(core)
        return None

    # -- synchronous convenience --------------------------------------------
    def read(
        self,
        vaddr: int,
        size: int,
        core: int = 0,
        cached: bool = True,
        batch: bool = True,
    ) -> bytes:
        return self.sim.run_process(
            self.g_read(vaddr, size, core, cached, batch)
        )

    def write(
        self,
        vaddr: int,
        data: bytes,
        core: int = 0,
        cached: bool = True,
        batch: bool = True,
    ) -> None:
        self.sim.run_process(self.g_write(vaddr, data, core, cached, batch))

    def read_u64(self, vaddr: int, core: int = 0, cached: bool = True) -> int:
        return int.from_bytes(self.read(vaddr, 8, core, cached), "little")

    def write_u64(
        self, vaddr: int, value: int, core: int = 0, cached: bool = True
    ) -> None:
        self.write(
            vaddr, int(value).to_bytes(8, "little", signed=False), core, cached
        )

    def bulk_write(self, vaddr: int, data: bytes, core: int = 0) -> None:
        """Untimed functional write — for population/setup phases that
        benchmarks deliberately leave unmeasured (accessor protocol of
        the packet-tier workloads)."""
        data = bytes(data)
        c = self._core(core)
        offset = 0
        for part_vaddr, part_size in self._split(vaddr, len(data)):
            trans = self.aspace.translate(part_vaddr)
            if trans.pte.damaged:
                self.aspace.heal_lost(part_vaddr, part_size)
            self.cluster.fn_write(
                c._prefixed(trans.phys_addr), data[offset : offset + part_size]
            )
            offset += part_size

    def write_array(self, vaddr: int, values: np.ndarray, core: int = 0) -> None:
        self.write(vaddr, np.ascontiguousarray(values).tobytes(), core)

    # -- the columnar data plane (DESIGN.md §13) ---------------------------
    def g_read_array(
        self, vaddr: int, count: int, dtype, core: int = 0, batch: bool = True
    ) -> Generator:
        """Typed read returning a fresh **writable** array, one copy total.

        Timing is charged through the cached span path over physically
        contiguous frame runs (O(bursts) simulated events); the data is
        then copied once from the owner's backing storage into the
        result — no ``bytes`` assembly, no ``frombuffer(...).copy()``
        double copy. Single-run reads (any column that fits one stretch
        of contiguous frames) take the backing store's chunk-slice fast
        path directly.
        """
        dt = np.dtype(dtype)
        if count == 0:
            return np.empty(0, dtype=dt)
        c = self._core(core)
        runs = yield from self._g_column_touch(
            vaddr, count * dt.itemsize, core, batch
        )
        if len(runs) == 1:
            return self.cluster.fn_read_array(
                c._prefixed(runs[0][0]), count, dt
            )
        out = np.empty(count, dtype=dt)
        mv = memoryview(out).cast("B")
        pos = 0
        for start, rsize, _damaged in runs:
            self.cluster.fn_read_into(c._prefixed(start), mv[pos : pos + rsize])
            pos += rsize
        return out

    def g_view_array(
        self, vaddr: int, count: int, dtype, core: int = 0, batch: bool = True
    ) -> Generator:
        """A typed column window over region-backed memory.

        Same timing as :meth:`g_read_array`; the data comes back as a
        **read-only zero-copy ndarray view** straight over the owner's
        backing chunk when the window is *view-legal* — one physically
        contiguous frame run, inside one storage chunk, no damaged
        pages — and as a fresh writable copy otherwise. Views alias
        live simulated memory: they observe later writes and must not
        outlive the scan that requested them (lifetime rules in
        DESIGN.md §13).
        """
        dt = np.dtype(dtype)
        if count == 0:
            return np.empty(0, dtype=dt)
        c = self._core(core)
        runs = yield from self._g_column_touch(
            vaddr, count * dt.itemsize, core, batch
        )
        if len(runs) == 1 and not runs[0][2]:
            view = self.cluster.fn_view_array(
                c._prefixed(runs[0][0]), count, dt
            )
            if view is not None:
                return view
        out = np.empty(count, dtype=dt)
        mv = memoryview(out).cast("B")
        pos = 0
        for start, rsize, _damaged in runs:
            self.cluster.fn_read_into(c._prefixed(start), mv[pos : pos + rsize])
            pos += rsize
        return out

    def read_array(
        self, vaddr: int, count: int, dtype, core: int = 0, batch: bool = True
    ) -> np.ndarray:
        return self.sim.run_process(
            self.g_read_array(vaddr, count, dtype, core, batch)
        )

    def view_array(
        self, vaddr: int, count: int, dtype, core: int = 0, batch: bool = True
    ) -> np.ndarray:
        return self.sim.run_process(
            self.g_view_array(vaddr, count, dtype, core, batch)
        )

    def column_windows(
        self,
        vaddr: int,
        count: int,
        dtype,
        core: int = 0,
        batch: bool = True,
        window_bytes: int = COLUMN_WINDOW_BYTES,
    ):
        """Stream a column as typed windows: yields ``(offset, window)``.

        *offset* is the element index of the window's first element.
        Windows split at ``window_bytes``-aligned virtual boundaries, so
        a chunk-aligned column serves every full window zero-copy.
        """
        dt = np.dtype(dtype)
        item = dt.itemsize
        if window_bytes < item or window_bytes % item:
            raise ConfigError(
                f"window_bytes {window_bytes} must be a multiple of the "
                f"{item}-byte element size"
            )
        pos = 0
        while pos < count:
            addr = vaddr + pos * item
            boundary = (addr // window_bytes + 1) * window_bytes
            take = min(count - pos, (boundary - addr) // item)
            yield pos, self.view_array(addr, take, dt, core=core, batch=batch)
            pos += take

    # -- internals ----------------------------------------------------------
    def _g_column_touch(
        self, vaddr: int, size: int, core: int, batch: bool
    ) -> Generator:
        """Charge a column read's timing; return its physical runs.

        Translates the span page by page, merges pages whose frames are
        physically contiguous into runs, then charges every run through
        :meth:`Core.cached_touch` — page-table walks collapse into one
        timeout under ``batch`` and stay per-walk on the scalar
        reference path (identical total time, enforced by the
        twin-cluster suites). Damaged pages go through ``check_lost``
        (touching a lost line raises) and taint their run so the view
        plane falls back to a copy.
        """
        c = self._core(core)
        runs: list[list] = []
        walks = 0
        for part_vaddr, part_size in self._split(vaddr, size):
            trans = self.aspace.translate(part_vaddr)
            if trans.pte.damaged:
                self.aspace.check_lost(part_vaddr, part_size)
            if not trans.tlb_hit:
                walks += 1
            if runs and runs[-1][0] + runs[-1][1] == trans.phys_addr:
                runs[-1][1] += part_size
                runs[-1][2] = runs[-1][2] or trans.pte.damaged
            else:
                runs.append([trans.phys_addr, part_size, trans.pte.damaged])
        if walks:
            if batch:
                yield self.sim.timeout(walks * TLB_WALK_NS)
            else:
                for _ in range(walks):
                    yield self.sim.timeout(TLB_WALK_NS)
        for start, rsize, _damaged in runs:
            self._check(core, start, rsize, False, True)
            yield from c.cached_touch(start, rsize, is_write=False, batch=batch)
        return runs
    def _core(self, idx: int):
        try:
            return self.node.cores[idx]
        except IndexError:
            raise ConfigError(
                f"node {self.node_id} has no core {idx} "
                f"(0..{len(self.node.cores) - 1})"
            ) from None

    def _split(self, vaddr: int, size: int):
        """Split an access at page boundaries (translations differ)."""
        page = self.aspace.page_bytes
        out = []
        pos = vaddr
        end = vaddr + size
        while pos < end:
            boundary = (pos // page + 1) * page
            take = min(end, boundary) - pos
            out.append((pos, take))
            pos += take
        return out
