"""Configuration dataclasses for every subsystem.

Defaults reproduce the paper's prototype (Section IV-B):

* 16 nodes, each a Supermicro-class board with four 2.1 GHz quad-core
  Opterons, 4 GB of DDR2-800 per socket (16 GB/node),
* each OS booted with 8 GB, the other 8 GB donated to a 128 GB
  cluster-wide shared pool,
* a 4x4 2D mesh of HyperTransport links between the FPGA-based RMCs,
* the RMC presented as an HT I/O unit, which limits each core to a
  single outstanding request to remote memory (vs. 8 to local).

All timing constants are stated in nanoseconds. They are calibrated to
the *relative* magnitudes the paper reports (local DRAM ~100 ns; remote
line fetch over the FPGA RMC ~1 us at one hop; remote-swap page fault
~tens of us), not to exact testbed numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import ConfigError
from repro.units import CACHE_LINE, GIB, PAGE_SIZE, bandwidth_time, gib

__all__ = [
    "LinkConfig",
    "NetworkConfig",
    "DRAMConfig",
    "CacheConfig",
    "CoreConfig",
    "NodeConfig",
    "RMCConfig",
    "SwapConfig",
    "HealthConfig",
    "ClusterConfig",
]


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigError(msg)


@dataclass(frozen=True)
class LinkConfig:
    """A point-to-point HT link between two fabric endpoints."""

    #: Payload bandwidth in bytes per nanosecond (== GB/s).
    bandwidth_Bpns: float = 1.6
    #: Wire propagation + SerDes latency per traversal.
    propagation_ns: float = 12.0
    #: Fixed per-packet header overhead in bytes (HT control doubleword).
    header_bytes: int = 8

    def __post_init__(self) -> None:
        _require(self.bandwidth_Bpns > 0, "link bandwidth must be positive")
        _require(self.propagation_ns >= 0, "propagation latency cannot be negative")
        _require(self.header_bytes >= 0, "header size cannot be negative")

    def serialization_ns(self, payload_bytes: int) -> float:
        """Time to clock a packet of *payload_bytes* onto the wire."""
        return bandwidth_time(
            payload_bytes + self.header_bytes, self.bandwidth_Bpns
        )


@dataclass(frozen=True)
class NetworkConfig:
    """The inter-node fabric (Section IV-B: a 4x4 2D mesh)."""

    topology: str = "mesh"
    #: Mesh/torus dimensions; for "ring"/"line" only dims[0] is used.
    dims: Tuple[int, int] = (4, 4)
    link: LinkConfig = field(default_factory=LinkConfig)
    #: Per-hop switch traversal latency (arbitration + crossbar).
    switch_latency_ns: float = 48.0
    #: Input-buffer depth of each switch port, in packets.
    switch_buffer_packets: int = 8

    def __post_init__(self) -> None:
        _require(
            self.topology in ("mesh", "torus", "ring", "line", "fullmesh"),
            f"unknown topology {self.topology!r}",
        )
        _require(
            all(d >= 1 for d in self.dims) and len(self.dims) == 2,
            f"dims must be two positive ints, got {self.dims!r}",
        )
        _require(self.switch_latency_ns >= 0, "switch latency cannot be negative")
        _require(self.switch_buffer_packets >= 1, "switch buffers must hold >= 1 packet")

    @property
    def num_nodes(self) -> int:
        if self.topology in ("ring", "line", "fullmesh"):
            return self.dims[0]
        return self.dims[0] * self.dims[1]


@dataclass(frozen=True)
class DRAMConfig:
    """Per-socket DDR2-800 memory controller + DIMM timing."""

    #: Capacity attached to one socket's memory controller.
    capacity_bytes: int = 4 * GIB
    #: Independent banks the controller can keep open.
    banks: int = 8
    #: Row-buffer hit access latency.
    row_hit_ns: float = 45.0
    #: Row-buffer miss (precharge + activate + CAS) latency.
    row_miss_ns: float = 90.0
    #: Bytes covered by one open row (used for hit/miss classification).
    row_bytes: int = 8192
    #: Controller front-end queue depth.
    queue_depth: int = 32
    #: Fixed controller pipeline overhead per request.
    controller_ns: float = 10.0

    def __post_init__(self) -> None:
        _require(self.capacity_bytes > 0, "DRAM capacity must be positive")
        _require(self.banks >= 1, "need at least one DRAM bank")
        _require(0 < self.row_hit_ns <= self.row_miss_ns,
                 "row hit latency must be positive and <= row miss latency")
        _require(self.row_bytes >= CACHE_LINE, "a DRAM row must hold >= one line")
        _require(self.queue_depth >= 1, "controller queue depth must be >= 1")


@dataclass(frozen=True)
class CacheConfig:
    """One level of a node's cache hierarchy (modeled at L2 granularity)."""

    size_bytes: int = 2 * 1024 * 1024
    associativity: int = 16
    line_bytes: int = CACHE_LINE
    hit_ns: float = 5.0
    #: write-back (True) or write-through (False)
    write_back: bool = True

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.associativity >= 1, "associativity must be >= 1")
        _require(self.line_bytes >= 8 and self.line_bytes & (self.line_bytes - 1) == 0,
                 "line size must be a power of two >= 8")
        _require(self.size_bytes % (self.line_bytes * self.associativity) == 0,
                 "cache size must be a whole number of sets")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class CoreConfig:
    """An Opteron-class core's memory-issue behaviour."""

    clock_ghz: float = 2.1
    #: Max outstanding requests to *local* (coherent) memory (Opteron: 8).
    local_outstanding: int = 8
    #: Max outstanding requests to the RMC-mapped I/O range (prototype: 1).
    remote_outstanding: int = 1
    #: Non-memory work per loop iteration of a pointer-chasing benchmark.
    compute_ns_per_access: float = 2.0
    #: On-board snoop broadcast window added to every coherent miss.
    snoop_ns: float = 14.0
    #: Cache-to-cache transfer when a peer holds the line Modified
    #: (faster than DRAM — the intervention path).
    cache2cache_ns: float = 42.0

    def __post_init__(self) -> None:
        _require(self.clock_ghz > 0, "clock must be positive")
        _require(self.local_outstanding >= 1, "local_outstanding must be >= 1")
        _require(self.remote_outstanding >= 1, "remote_outstanding must be >= 1")
        _require(self.snoop_ns >= 0, "snoop window cannot be negative")
        _require(self.cache2cache_ns >= 0, "c2c latency cannot be negative")


@dataclass(frozen=True)
class NodeConfig:
    """One cluster node (Section IV-B: 4 sockets x 4 cores, 16 GB)."""

    sockets: int = 4
    cores_per_socket: int = 4
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    #: Fraction of node memory the local OS keeps; the rest joins the
    #: cluster shared pool (prototype: 8 GB of 16 GB => 0.5).
    private_fraction: float = 0.5
    #: Stripe the node's physical space across the sockets' memory
    #: controllers at this granularity (Opteron "node interleaving").
    #: 0 = contiguous per-socket blocks (the BIOS default the paper's
    #: Fig. 2(a) BAR walk-through describes).
    interleave_bytes: int = 0

    def __post_init__(self) -> None:
        _require(self.sockets >= 1, "need at least one socket")
        _require(self.cores_per_socket >= 1, "need at least one core per socket")
        _require(0.0 < self.private_fraction <= 1.0,
                 "private_fraction must be in (0, 1]")
        if self.interleave_bytes:
            _require(
                self.interleave_bytes >= 4096
                and self.interleave_bytes & (self.interleave_bytes - 1) == 0,
                "interleave granularity must be a power of two >= 4096",
            )

    @property
    def num_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def total_memory_bytes(self) -> int:
        return self.sockets * self.dram.capacity_bytes

    @property
    def private_memory_bytes(self) -> int:
        return int(self.total_memory_bytes * self.private_fraction)

    @property
    def donated_memory_bytes(self) -> int:
        return self.total_memory_bytes - self.private_memory_bytes


@dataclass(frozen=True)
class RMCConfig:
    """The Remote Memory Controller (FPGA HTX card in the prototype).

    The client pipeline (terminating local core requests and matching
    returning responses) is the expensive side of the FPGA design —
    this is where the paper locates the bottleneck of Fig. 7. The
    server pipeline (stripping the prefix and replaying the request to
    a local memory controller) is a much simpler forwarding path.
    """

    #: Client-pipeline time per operation (request issue / response match).
    processing_ns: float = 140.0
    #: Server-pipeline time per operation (decapsulate-forward / reply).
    server_processing_ns: float = 48.0
    #: Client-side in-flight request slots (the prototype FPGA is shallow).
    buffer_entries: int = 4
    #: Server-side admission slots; overflowing them NACKs over the fabric.
    server_buffer_entries: int = 16
    #: Latency to emit a NACK when a buffer is full.
    nack_ns: float = 40.0
    #: Requester back-off before retrying a NACKed request.
    retry_backoff_ns: float = 600.0
    #: Per-outstanding-request watchdog timeout: a request with no
    #: response after this long is retransmitted (0 = watchdog off, the
    #: original fail-stop-free fabric where losses cannot happen).
    request_timeout_ns: float = 0.0
    #: Retransmission budget per request before the access fails with
    #: RemoteAccessError (0 = retry forever, the original behaviour).
    max_retries: int = 0
    #: Exponential back-off growth factor applied per retry attempt
    #: (1.0 = fixed back-off, the original behaviour).
    backoff_multiplier: float = 1.0
    #: Upper bound on any single back-off delay (0 = uncapped).
    backoff_cap_ns: float = 0.0
    #: Arbitration-overhead factor: pipeline service time scales by
    #: ``(1 + congestion_alpha * queue_length)`` up to ``congestion_cap``.
    #: Models the FPGA pipeline stalling under bursty load — the effect
    #: behind Fig. 7's counter-intuitive hop-distance result.
    congestion_alpha: float = 0.35
    congestion_cap: float = 4.0
    #: If True the RMC keeps a translation table (ablation of the
    #: paper's no-table prefix scheme) and pays table_lookup_ns per op.
    use_translation_table: bool = False
    table_lookup_ns: float = 60.0
    #: Hardware sequential prefetch: on each forwarded read the client
    #: RMC also fetches the next N lines into a small line buffer
    #: (Section VI future work; 0 = the built prototype).
    prefetch_depth: int = 0
    #: Line-buffer entries for prefetched data.
    prefetch_buffer_lines: int = 32
    #: Issue prefetch fills as coalesced burst reads (one packet per
    #: run of consecutive lines, charged per line). False selects the
    #: scalar one-packet-per-line reference twin the equivalence suite
    #: pins the batched path against.
    prefetch_batch: bool = True

    def __post_init__(self) -> None:
        _require(self.prefetch_depth >= 0, "prefetch depth cannot be negative")
        _require(self.prefetch_buffer_lines >= 1,
                 "prefetch buffer needs >= 1 line")
        _require(self.processing_ns > 0, "RMC processing latency must be positive")
        _require(self.server_processing_ns > 0,
                 "RMC server processing latency must be positive")
        _require(self.buffer_entries >= 1, "RMC buffer must hold >= 1 entry")
        _require(self.server_buffer_entries >= 1,
                 "RMC server buffer must hold >= 1 entry")
        _require(self.nack_ns >= 0, "NACK latency cannot be negative")
        _require(self.retry_backoff_ns >= 0, "retry backoff cannot be negative")
        _require(self.request_timeout_ns >= 0,
                 "request timeout cannot be negative")
        _require(self.max_retries >= 0, "max_retries cannot be negative")
        _require(self.backoff_multiplier >= 1,
                 "backoff_multiplier must be >= 1 (back-off never shrinks)")
        _require(self.backoff_cap_ns >= 0, "backoff cap cannot be negative")
        _require(self.congestion_alpha >= 0, "congestion_alpha cannot be negative")
        _require(self.congestion_cap >= 1, "congestion_cap must be >= 1")
        _require(self.table_lookup_ns >= 0, "table lookup cost cannot be negative")

    def per_op_ns(self) -> float:
        """Uncontended client-pipeline latency per operation."""
        extra = self.table_lookup_ns if self.use_translation_table else 0.0
        return self.processing_ns + extra

    def server_per_op_ns(self) -> float:
        """Uncontended server-pipeline latency per operation."""
        extra = self.table_lookup_ns if self.use_translation_table else 0.0
        return self.server_processing_ns + extra

    def backoff_ns(self, base_ns: float, attempt: int) -> float:
        """Exponential back-off delay for retry *attempt* (counted from 1).

        *base_ns* is scaled by ``backoff_multiplier ** (attempt - 1)``
        and capped at ``backoff_cap_ns`` when a cap is set. The defaults
        (multiplier 1.0, no cap) reproduce the original fixed back-off
        bit-for-bit.
        """
        delay = base_ns * self.backoff_multiplier ** max(attempt - 1, 0)
        if self.backoff_cap_ns and delay > self.backoff_cap_ns:
            return self.backoff_cap_ns
        return delay


@dataclass(frozen=True)
class SwapConfig:
    """Cost model for the swap baselines (Section V-B comparison)."""

    page_bytes: int = PAGE_SIZE
    #: Kernel page-fault handling overhead (trap, VMA walk, I/O setup).
    os_fault_ns: float = 6_000.0
    #: Remote-swap page transfer setup (network stack, DMA programming).
    net_setup_ns: float = 12_000.0
    #: Remote-swap page transfer bandwidth (GbE-class: ~0.12 B/ns).
    net_bandwidth_Bpns: float = 0.125
    #: Disk-swap seek + rotational latency per page.
    disk_seek_ns: float = 6_000_000.0
    #: Disk sequential transfer bandwidth.
    disk_bandwidth_Bpns: float = 0.08
    #: Local frames available for swap-cache residency, as a fraction of
    #: node private memory usable by the application.
    resident_fraction: float = 1.0

    def __post_init__(self) -> None:
        _require(self.page_bytes >= 512 and self.page_bytes % 512 == 0,
                 "page size must be a multiple of 512 bytes")
        _require(self.os_fault_ns >= 0, "OS fault overhead cannot be negative")
        _require(self.net_bandwidth_Bpns > 0, "network bandwidth must be positive")
        _require(self.disk_bandwidth_Bpns > 0, "disk bandwidth must be positive")
        _require(0 < self.resident_fraction <= 1.0,
                 "resident_fraction must be in (0, 1]")

    def remote_page_ns(self) -> float:
        """End-to-end remote-swap fault service time for one page."""
        return (
            self.os_fault_ns
            + self.net_setup_ns
            + bandwidth_time(self.page_bytes, self.net_bandwidth_Bpns)
        )

    def disk_page_ns(self) -> float:
        """End-to-end disk-swap fault service time for one page."""
        return (
            self.os_fault_ns
            + self.disk_seek_ns
            + bandwidth_time(self.page_bytes, self.disk_bandwidth_Bpns)
        )


@dataclass(frozen=True)
class HealthConfig:
    """Failure detection and lease lifecycle (the self-healing layer).

    All machinery described here is dormant until
    :meth:`~repro.cluster.cluster.Cluster.arm_health` is called — an
    unarmed cluster schedules no probes, keeps no lease timers, and is
    bit-identical to a build without the health subsystem.
    """

    #: Period between liveness probes from a borrower to each donor it
    #: holds a lease from.
    heartbeat_period_ns: float = 20_000.0
    #: How long one probe waits for its ack before counting a miss.
    #: Must comfortably exceed the control daemon's worst service
    #: bubble: probes share one single-server daemon per node with the
    #: reservation protocol, whose reserve/release ops each cost
    #: ``RESERVATION_SERVICE_NS`` (15 us) — a timeout below that turns
    #: every probe that queues behind one reservation into a false
    #: miss, and a renewal-retry storm into control-plane collapse.
    probe_timeout_ns: float = 30_000.0
    #: Consecutive misses before the peer is declared dead.
    miss_threshold: int = 3
    #: Consecutive misses before the route to the peer is quarantined
    #: (rerouted around its first hop where the topology allows) — the
    #: link-flap escape hatch that fires *before* a death verdict.
    quarantine_after: int = 2
    #: Finite lease lifetime; 0 keeps the paper's infinite leases (no
    #: renewal traffic, no expiry daemon).
    lease_ttl_ns: float = 0.0
    #: How long before expiry the borrower starts renewing (should
    #: exceed ``probe_timeout_ns`` so one full renewal exchange fits
    #: before the nominal deadline).
    renew_margin_ns: float = 40_000.0
    #: Grace window after a renewal first times out: a slow donor can
    #: still answer a retry here; only when the grace budget is gone is
    #: the lease expired (the slow-vs-dead distinction). Sized for
    #: three retries at ``probe_timeout_ns`` so a transient link flap
    #: is not promoted into an (unrecoverable) lease expiry.
    lease_grace_ns: float = 90_000.0
    #: On a confirmed donor death, automatically re-reserve capacity
    #: from healthy donors and re-materialize recoverable pages.
    auto_recover: bool = True
    #: How long one replacement-reservation exchange may take before
    #: recovery abandons the candidate donor and tries the next one —
    #: the bound that keeps recovery live when the exchange itself is
    #: black-holed (partition, dropped CTRL packet).
    reserve_timeout_ns: float = 150_000.0
    #: Start watching a donor (and its lease timer) on every borrow.
    #: False arms the monitor without attaching anything — the empty
    #: plan of the bit-identical equivalence test.
    watch_on_borrow: bool = True
    #: SWIM-style corroboration: before declaring a peer dead at
    #: ``miss_threshold``, ask up to this many other watched peers to
    #: probe it indirectly; any success refutes the verdict. 0 keeps
    #: single-observer declarations (and schedules no extra traffic).
    indirect_probes: int = 0
    #: Minimum fraction of its watch set an observer must itself reach
    #: to declare deaths or issue new borrows. Below quorum the
    #: observer assumes *it* is the partitioned minority: it enters
    #: isolated mode and self-fences instead of degrading the
    #: majority. Only consulted when ``indirect_probes > 0``.
    quorum_fraction: float = 0.5
    #: How long a solicited helper waits for its indirect probe before
    #: reporting the suspect unreachable; the observer's corroboration
    #: round waits this plus one ``probe_timeout_ns``.
    ping_req_timeout_ns: float = 60_000.0
    #: Stamp lease epochs on remote requests and fence stale epochs at
    #: the donor RMC (armed by ``arm_health``): after a reclaim or
    #: re-grant, a healed minority borrower's write is NACKed with
    #: ``RemoteAccessError(reason="fenced")`` instead of corrupting
    #: the new tenant's memory.
    epoch_fencing: bool = False

    def __post_init__(self) -> None:
        _require(self.heartbeat_period_ns > 0, "heartbeat period must be positive")
        _require(self.probe_timeout_ns > 0, "probe timeout must be positive")
        _require(self.miss_threshold >= 1, "miss_threshold must be >= 1")
        _require(
            1 <= self.quarantine_after <= self.miss_threshold,
            "quarantine_after must be in [1, miss_threshold]",
        )
        _require(self.lease_ttl_ns >= 0, "lease TTL cannot be negative")
        _require(self.renew_margin_ns > 0, "renew margin must be positive")
        _require(self.lease_grace_ns >= 0, "lease grace cannot be negative")
        _require(
            self.reserve_timeout_ns > 0, "reserve timeout must be positive"
        )
        _require(
            self.indirect_probes >= 0, "indirect_probes cannot be negative"
        )
        _require(
            0 < self.quorum_fraction <= 1,
            "quorum_fraction must be in (0, 1]",
        )
        _require(
            self.ping_req_timeout_ns > 0, "ping-req timeout must be positive"
        )
        if self.lease_ttl_ns:
            _require(
                self.renew_margin_ns < self.lease_ttl_ns,
                "renew margin must be smaller than the lease TTL",
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Top-level description of the whole prototype."""

    network: NetworkConfig = field(default_factory=NetworkConfig)
    node: NodeConfig = field(default_factory=NodeConfig)
    rmc: RMCConfig = field(default_factory=RMCConfig)
    swap: SwapConfig = field(default_factory=SwapConfig)
    health: HealthConfig = field(default_factory=HealthConfig)
    #: Root seed for all stochastic components.
    seed: int = 0xC1A5_7E12

    def __post_init__(self) -> None:
        _require(self.network.num_nodes >= 1, "cluster needs >= 1 node")

    @property
    def num_nodes(self) -> int:
        return self.network.num_nodes

    @property
    def shared_pool_bytes(self) -> int:
        """Total donated memory across the cluster (128 GiB by default)."""
        return self.num_nodes * self.node.donated_memory_bytes

    def with_nodes(self, n: int) -> "ClusterConfig":
        """Convenience: same config scaled to an *n*-node line topology."""
        _require(n >= 1, "cluster needs >= 1 node")
        net = replace(self.network, topology="line", dims=(n, 1))
        return replace(self, network=net)


def paper_prototype() -> ClusterConfig:
    """The 16-node, 4x4-mesh, 128 GB-pool configuration of Section IV-B."""
    return ClusterConfig()


def htoe_cluster(nodes: int = 16) -> ClusterConfig:
    """HyperTransport-over-Ethernet deployment (Section IV-B outlook).

    The paper notes the HT Consortium "is currently standardizing ...
    HyperTransport over Ethernet and HyperTransport over Infiniband,
    that will allow the use of standard Ethernet and Infiniband
    switches". Modeled as a non-blocking switched fabric (full mesh,
    one hop between any pair) whose links carry 10 GbE-class
    serialization and the switch+encapsulation latency of an
    Ethernet path.
    """
    return ClusterConfig(
        network=NetworkConfig(
            topology="fullmesh",
            dims=(nodes, 1),
            link=LinkConfig(
                bandwidth_Bpns=1.25,    # 10 GbE payload rate
                propagation_ns=450.0,   # encap + switch + decap
                header_bytes=26,        # Ethernet framing around HT
            ),
            switch_latency_ns=48.0,
        )
    )


__all__ += ["paper_prototype", "htoe_cluster"]
