"""Conservative may-call graph over the symbol table.

Resolution is name-based — precise enough for the repo's invariants,
deliberately over-approximate everywhere else:

* ``self.m(...)`` / ``cls.m(...)`` inside a method of class ``C``
  resolves to ``m`` on ``C`` and its name-known bases (falling back to
  every method named ``m`` when ``C`` doesn't define one — mixin
  pattern);
* ``obj.m(...)`` resolves to **every** method named ``m`` plus every
  module-level function named ``m`` (module-alias calls like
  ``rebalance.heal_sessions(...)``);
* ``f(...)`` resolves to module-level functions named ``f`` (same
  file preferred) and to ``__init__`` of classes named ``f``.

An edge that doesn't exist in reality can only make reachability
queries *more* inclusive, which is the safe direction for the
exception-flow audit (SIM011): the rule asks "could this handler see
a RemoteAccessError?", and a spurious yes is a reviewable pragma, a
missing yes is a swallowed machine check.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Sequence

from simcheck.symbols import FunctionInfo, SymbolTable

__all__ = ["CallSite", "CallGraph"]


@dataclass
class CallSite:
    """One call expression inside a known function."""

    caller: str
    node: ast.Call
    callee_name: str
    #: qualnames the call may dispatch to (may be empty: unknown callee)
    candidates: tuple[str, ...]


class CallGraph:
    """May-call edges between the symbol table's functions."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.sites: list[CallSite] = []
        self.sites_by_caller: dict[str, list[CallSite]] = {}
        self.edges: dict[str, set[str]] = {}
        self.callers_of: dict[str, set[str]] = {}
        for info in symbols.functions.values():
            self._index_function(info)

    # -- construction ----------------------------------------------------
    def _index_function(self, info: FunctionInfo) -> None:
        sites = self.sites_by_caller.setdefault(info.qualname, [])
        out = self.edges.setdefault(info.qualname, set())
        for node in self._own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            name = self._callee_name(node)
            if name is None:
                continue
            candidates = tuple(
                sorted(
                    f.qualname for f in self.resolve(node, caller=info)
                )
            )
            site = CallSite(info.qualname, node, name, candidates)
            sites.append(site)
            self.sites.append(site)
            for callee in candidates:
                out.add(callee)
                self.callers_of.setdefault(callee, set()).add(info.qualname)

    @staticmethod
    def _own_nodes(
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Iterable[ast.AST]:
        """Walk *fn* without descending into nested def/class bodies
        (those are separate call-graph nodes)."""
        stack: list[ast.AST] = []
        for stmt in fn.body:
            stack.append(stmt)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _callee_name(call: ast.Call) -> "str | None":
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None

    def resolve(
        self, call: ast.Call, caller: FunctionInfo
    ) -> list[FunctionInfo]:
        """Candidate definitions one call expression may dispatch to."""
        func = call.func
        symbols = self.symbols
        if isinstance(func, ast.Attribute):
            name = func.attr
            recv = func.value
            if (
                isinstance(recv, ast.Name)
                and recv.id in ("self", "cls")
                and caller.class_name is not None
            ):
                own = symbols.class_method(caller.class_name, name)
                if own:
                    return own
            return symbols.methods_named(name) + symbols.functions_named(name)
        if isinstance(func, ast.Name):
            name = func.id
            funcs = symbols.functions_named(name)
            local = [f for f in funcs if f.rel_path == caller.rel_path]
            out = local if local else list(funcs)
            for cls_info in symbols.classes.get(name, ()):
                init = cls_info.methods.get("__init__")
                if init is not None:
                    out.append(init)
            return out
        return []

    # -- queries ----------------------------------------------------------
    def functions_raising(self, *exc_names: str) -> dict[str, ast.Raise]:
        """qualname -> one representative ``raise`` site, for every
        function whose own body raises one of *exc_names*."""
        wanted = set(exc_names)
        out: dict[str, ast.Raise] = {}
        for info in self.symbols.functions.values():
            for node in self._own_nodes(info.node):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                name = None
                if isinstance(exc, ast.Attribute):
                    name = exc.attr
                elif isinstance(exc, ast.Name):
                    name = exc.id
                if name in wanted and info.qualname not in out:
                    out[info.qualname] = node
        return out

    def can_reach(self, seeds: Iterable[str]) -> set[str]:
        """Transitive closure over may-call edges, starting at *seeds*:
        every function that can (indirectly) invoke one of them."""
        closure = set(seeds)
        worklist = list(closure)
        while worklist:
            target = worklist.pop()
            for caller in self.callers_of.get(target, ()):
                if caller not in closure:
                    closure.add(caller)
                    worklist.append(caller)
        return closure

    def calls_reaching(
        self, site_nodes: Sequence[ast.Call], raisers: set[str]
    ) -> "ast.Call | None":
        """First call in *site_nodes* whose candidate set intersects
        *raisers* (used to tie a try-body to a raise origin)."""
        by_node = {id(s.node): s for s in self.sites}
        for node in site_nodes:
            site = by_node.get(id(node))
            if site is None:
                continue
            if any(c in raisers for c in site.candidates):
                return node
        return None
