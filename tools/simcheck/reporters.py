"""Output formats for simcheck runs.

* text — one ``path:line:col: CODE message`` line per violation plus a
  summary; the format editors and CI greps expect.
* json — a stable machine-readable document (schema below) for the CI
  entrypoint and any dashboarding. The schema is intentionally frozen;
  bump ``schema_version`` on any incompatible change and keep the
  reporter test in ``tests/tools/test_simcheck.py`` in sync.

JSON schema (version 1)::

    {
      "schema_version": 1,
      "tool": "simcheck",
      "files_checked": <int>,
      "suppressed": <int>,
      "violation_count": <int>,
      "rules": [{"code": str, "title": str}, ...],
      "violations": [
        {"path": str, "line": int, "col": int,
         "code": str, "message": str},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from typing import Sequence

from simcheck.engine import FileReport, Violation
from simcheck.rules import rule_catalogue

__all__ = ["render_text", "render_json"]


def render_text(
    reports: Sequence[FileReport], violations: Sequence[Violation]
) -> str:
    lines = [v.render() for v in violations]
    suppressed = sum(r.suppressed for r in reports)
    summary = (
        f"simcheck: {len(violations)} violation(s) in "
        f"{len(reports)} file(s) checked"
    )
    if suppressed:
        summary += f" ({suppressed} suppressed by pragma)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    reports: Sequence[FileReport], violations: Sequence[Violation]
) -> str:
    doc = {
        "schema_version": 1,
        "tool": "simcheck",
        "files_checked": len(reports),
        "suppressed": sum(r.suppressed for r in reports),
        "violation_count": len(violations),
        "rules": [
            {"code": code, "title": title}
            for code, title, _ in rule_catalogue()
        ],
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "code": v.code,
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
