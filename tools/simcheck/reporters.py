"""Output formats for simcheck runs.

* text — one ``path:line:col: CODE message`` line per violation plus a
  summary; the format editors and CI greps expect.
* json — a stable machine-readable document (schema below) for the CI
  entrypoint and any dashboarding. The schema is intentionally frozen;
  bump ``schema_version`` on any incompatible change and keep the
  reporter test in ``tests/tools/test_simcheck.py`` in sync.
* sarif — minimal SARIF 2.1.0 for code-scanning UIs (one run, one
  result per violation, the rule catalogue as ``rules``). Only the
  properties those UIs actually read are emitted.

JSON schema (version 1)::

    {
      "schema_version": 1,
      "tool": "simcheck",
      "files_checked": <int>,
      "suppressed": <int>,
      "violation_count": <int>,
      "rules": [{"code": str, "title": str}, ...],
      "violations": [
        {"path": str, "line": int, "col": int,
         "code": str, "message": str},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from typing import Sequence

from simcheck.engine import FileReport, Violation
from simcheck.rules import rule_catalogue

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(
    reports: Sequence[FileReport], violations: Sequence[Violation]
) -> str:
    lines = [v.render() for v in violations]
    suppressed = sum(r.suppressed for r in reports)
    summary = (
        f"simcheck: {len(violations)} violation(s) in "
        f"{len(reports)} file(s) checked"
    )
    if suppressed:
        summary += f" ({suppressed} suppressed by pragma)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    reports: Sequence[FileReport], violations: Sequence[Violation]
) -> str:
    doc = {
        "schema_version": 1,
        "tool": "simcheck",
        "files_checked": len(reports),
        "suppressed": sum(r.suppressed for r in reports),
        "violation_count": len(violations),
        "rules": [
            {"code": code, "title": title}
            for code, title, _ in rule_catalogue()
        ],
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "code": v.code,
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_sarif(
    reports: Sequence[FileReport], violations: Sequence[Violation]
) -> str:
    """SARIF 2.1.0, minimal profile.

    SIM000 (stale pragma) can appear in *violations* without being in
    the registered catalogue; it gets a synthetic rule entry so every
    result's ``ruleId`` resolves.
    """
    catalogue = rule_catalogue()
    known = {code for code, _, _ in catalogue}
    rules = [
        {
            "id": code,
            "shortDescription": {"text": title},
            "fullDescription": {"text": doc.splitlines()[0] if doc else title},
        }
        for code, title, doc in catalogue
    ]
    if any(v.code not in known for v in violations):
        rules.insert(
            0,
            {
                "id": "SIM000",
                "shortDescription": {"text": "stale suppression pragma"},
                "fullDescription": {
                    "text": "a simcheck pragma that suppresses nothing"
                },
            },
        )
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simcheck",
                        "informationUri": "DESIGN.md",
                        "rules": rules,
                    }
                },
                "results": [
                    {
                        "ruleId": v.code,
                        "level": "error",
                        "message": {"text": v.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": v.path},
                                    "region": {
                                        "startLine": v.line,
                                        "startColumn": v.col,
                                    },
                                }
                            }
                        ],
                    }
                    for v in violations
                ],
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
