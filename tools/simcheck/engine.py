"""simcheck core: file model, pragma handling, rule driver.

A :class:`Project` is the set of parsed Python files one invocation
covers. Rules (see :mod:`simcheck.rules`) implement two hooks:

* ``check_file(ctx)`` — per-file AST pass, yields :class:`Violation`;
* ``finalize(project)`` — cross-file pass run once after every file
  was visited (used by SIM005, which must pair accessors in ``src``
  with references in ``tests``).

Suppression pragmas, modeled on pylint's:

* ``# simcheck: disable=SIM001,SIM003`` on a line suppresses those
  codes for violations reported *on that line*;
* ``# simcheck: disable`` (no codes) suppresses every code on the line;
* ``# simcheck: disable-file=SIM006`` anywhere in a file suppresses
  the code for the whole file.

Suppressed violations are counted (``FileReport.suppressed``) so the
reporters can surface how much is being waved through.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from simcheck.rules import Rule

__all__ = [
    "Violation",
    "FileContext",
    "FileReport",
    "Project",
    "check_paths",
]

_PRAGMA_RE = re.compile(
    r"#\s*simcheck:\s*(?P<kind>disable(?:-file)?)\s*(?:=\s*(?P<codes>[A-Z0-9,\s]+))?"
)

_CODE_RE = re.compile(r"^SIM\d{3}$")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit, addressable as ``path:line:col: code message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class _Pragmas:
    """Parsed suppression pragmas of one file, with use tracking.

    Every suppression records which pragma fired so that
    ``--strict-pragmas`` can flag the ones that no longer suppress
    anything (stale pragmas, reported as SIM000).
    """

    #: line number -> codes disabled on that line (empty set == all)
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: codes disabled for the entire file (empty set member "" == all)
    file_wide: set[str] = field(default_factory=set)
    all_file_wide: bool = False
    #: declaration line of each file-wide code / the bare disable-file
    file_wide_lines: dict[str, int] = field(default_factory=dict)
    all_file_wide_line: int = 0
    # -- use tracking (filled during a run) --
    used_lines: set[int] = field(default_factory=set)
    used_file_codes: set[str] = field(default_factory=set)
    file_wide_uses: int = 0

    def suppresses(self, violation: Violation) -> bool:
        if self.all_file_wide:
            self.file_wide_uses += 1
            return True
        if violation.code in self.file_wide:
            self.used_file_codes.add(violation.code)
            return True
        codes = self.by_line.get(violation.line)
        if codes is None:
            return False
        if not codes or violation.code in codes:
            self.used_lines.add(violation.line)
            return True
        return False

    def stale(self) -> list[tuple[int, str]]:
        """``(line, description)`` for every pragma that suppressed
        nothing in this run."""
        out: list[tuple[int, str]] = []
        for line, codes in self.by_line.items():
            if line not in self.used_lines:
                what = ",".join(sorted(codes)) if codes else "all codes"
                out.append((line, f"disable={what}"))
        for code in self.file_wide:
            if code not in self.used_file_codes:
                out.append(
                    (self.file_wide_lines.get(code, 1), f"disable-file={code}")
                )
        if self.all_file_wide and self.file_wide_uses == 0:
            out.append((self.all_file_wide_line or 1, "disable-file"))
        return sorted(out)


def _parse_pragmas(source: str, path: str) -> _Pragmas:
    """Collect pragmas from the token stream (comments only, so pragma
    text inside string literals never suppresses anything)."""
    pragmas = _Pragmas()
    lines = source.splitlines(keepends=True)
    reader = iter(lines)
    try:
        tokens = list(tokenize.generate_tokens(lambda: next(reader, "")))
    except tokenize.TokenError:  # pragma: no cover - unparsable file
        return pragmas
    for tok in tokens:
        if tok.type is not tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if not match:
            continue
        raw = match.group("codes")
        codes = (
            {c.strip() for c in raw.split(",") if c.strip()} if raw else set()
        )
        bad = {c for c in codes if not _CODE_RE.match(c)}
        if bad:
            raise ValueError(
                f"{path}:{tok.start[0]}: malformed simcheck pragma codes {sorted(bad)}"
            )
        if match.group("kind") == "disable-file":
            if codes:
                pragmas.file_wide |= codes
                for code in codes:
                    pragmas.file_wide_lines.setdefault(code, tok.start[0])
            else:
                pragmas.all_file_wide = True
                if not pragmas.all_file_wide_line:
                    pragmas.all_file_wide_line = tok.start[0]
        else:
            pragmas.by_line.setdefault(tok.start[0], set()).update(codes)
            if not codes:
                pragmas.by_line[tok.start[0]] = set()
    return pragmas


class FileContext:
    """Everything a rule needs to know about one parsed file."""

    def __init__(self, path: Path, rel_path: str, source: str) -> None:
        self.path = path
        #: POSIX-style path relative to the invocation root, used both
        #: for reporting and for the rules' allow-lists
        self.rel_path = rel_path
        self.source = source
        self.tree = ast.parse(source, filename=rel_path)
        self.pragmas = _parse_pragmas(source, rel_path)

    @property
    def is_test(self) -> bool:
        parts = Path(self.rel_path).parts
        return "tests" in parts or Path(self.rel_path).name.startswith("test_")

    def in_module(self, *suffixes: str) -> bool:
        """True when this file is one of the named allow-listed modules
        (matched on path suffix, so absolute and relative roots agree)."""
        return any(self.rel_path.endswith(suffix) for suffix in suffixes)

    def violation(self, node: ast.AST, code: str, message: str) -> Violation:
        return Violation(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


@dataclass
class FileReport:
    """Per-file outcome: surviving violations + suppression count."""

    rel_path: str
    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0


class Project:
    """The parsed file set of one simcheck run."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files = list(files)
        self._symbols = None
        self._callgraph = None

    @property
    def test_files(self) -> list[FileContext]:
        return [f for f in self.files if f.is_test]

    @property
    def src_files(self) -> list[FileContext]:
        return [f for f in self.files if not f.is_test]

    @property
    def has_tests(self) -> bool:
        return bool(self.test_files)

    @property
    def symbols(self):
        """Lazily built project-wide symbol table (flow rules only pay
        for it when a cross-file rule is active)."""
        if self._symbols is None:
            from simcheck.symbols import SymbolTable

            self._symbols = SymbolTable.build(self.files)
        return self._symbols

    @property
    def callgraph(self):
        """Lazily built conservative may-call graph."""
        if self._callgraph is None:
            from simcheck.callgraph import CallGraph

            self._callgraph = CallGraph(self.symbols)
        return self._callgraph


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")


def check_paths(
    paths: Sequence[str | Path],
    rules: Optional[Sequence["Rule"]] = None,
    root: Optional[Path] = None,
    cache=None,
    strict_pragmas: bool = False,
) -> tuple[list[FileReport], list[Violation]]:
    """Run *rules* over every ``.py`` file under *paths*.

    Returns ``(reports, violations)``: per-file reports (in scan order)
    and the flat, sorted list of surviving violations. Cross-file rule
    output (no single home file) is appended to the file it points at
    when that file was scanned, else to a synthetic report.

    With *cache* (a :class:`simcheck.cache.ResultCache`), an unchanged
    tree replays the whole previous result without parsing (project
    tier), and a partially changed tree skips the per-file rules on
    unchanged files (file tier; cross-file rules always run live).

    With *strict_pragmas*, every suppression pragma that suppressed
    nothing this run is reported as a SIM000 violation — stale
    suppressions hide future regressions and must be pruned.
    """
    from simcheck.rules import ALL_RULES

    active = list(rules) if rules is not None else [cls() for cls in ALL_RULES]
    root = root if root is not None else Path.cwd()

    entries: list[tuple[Path, str, str]] = []
    for file_path in _iter_python_files([Path(p) for p in paths]):
        try:
            rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        entries.append((file_path, rel, file_path.read_text()))

    run_key = project_key = None
    if cache is not None:
        run_key = cache.run_key(
            [rule.code for rule in active], strict_pragmas
        )
        project_key = cache.project_key(
            run_key,
            [(rel, cache.content_hash(source)) for _, rel, source in entries],
        )
        hit = cache.lookup_project(project_key)
        if hit is not None:
            return hit

    contexts = [
        FileContext(file_path, rel, source)
        for file_path, rel, source in entries
    ]
    project = Project(contexts)
    reports = {ctx.rel_path: FileReport(ctx.rel_path) for ctx in contexts}

    def _file(rel_path: str) -> FileReport:
        return reports.setdefault(rel_path, FileReport(rel_path))

    def _record(ctx: Optional[FileContext], violation: Violation) -> None:
        report = _file(violation.path)
        if ctx is not None and ctx.pragmas.suppresses(violation):
            report.suppressed += 1
        else:
            report.violations.append(violation)

    by_path = {ctx.rel_path: ctx for ctx in contexts}
    for ctx in contexts:
        report = reports[ctx.rel_path]
        cached = (
            cache.lookup_file(
                ctx.rel_path, cache.content_hash(ctx.source), run_key
            )
            if cache is not None
            else None
        )
        if cached is not None:
            report.violations.extend(cached["violations"])
            report.suppressed += cached["suppressed"]
            ctx.pragmas.used_lines.update(cached["suppressed_lines"])
            ctx.pragmas.used_file_codes.update(cached["used_file_codes"])
            ctx.pragmas.file_wide_uses += cached["file_wide_uses"]
            continue
        for rule in active:
            for violation in rule.check_file(ctx):
                _record(ctx, violation)
        if cache is not None:
            cache.store_file(
                ctx.rel_path,
                cache.content_hash(ctx.source),
                run_key,
                report.violations,
                report.suppressed,
                sorted(ctx.pragmas.used_lines),
                sorted(ctx.pragmas.used_file_codes),
                ctx.pragmas.file_wide_uses,
            )
    for rule in active:
        for violation in rule.finalize(project):
            _record(by_path.get(violation.path), violation)

    if strict_pragmas:
        for ctx in contexts:
            for line, what in ctx.pragmas.stale():
                # SIM000 is itself never suppressible: a pragma that
                # only suppresses its own staleness report is the
                # degenerate case the flag exists to kill
                _file(ctx.rel_path).violations.append(
                    Violation(
                        path=ctx.rel_path,
                        line=line,
                        col=1,
                        code="SIM000",
                        message=f"stale pragma ({what}) suppresses "
                        "nothing — remove it",
                    )
                )

    ordered = [reports[ctx.rel_path] for ctx in contexts]
    ordered += [r for p, r in sorted(reports.items()) if p not in by_path]
    flat = sorted(v for r in ordered for v in r.violations)
    if cache is not None:
        cache.store_project(project_key, ordered, flat)
        cache.save()
    return ordered, flat
