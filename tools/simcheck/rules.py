"""The repo-specific rule set (SIM001–SIM008; the flow-aware
SIM009–SIM012 live in :mod:`simcheck.flowrules` and are registered
here).

Each rule is a small AST pass over one :class:`~simcheck.engine.FileContext`
plus an optional cross-file ``finalize`` over the whole
:class:`~simcheck.engine.Project`. Rules are registered in
:data:`ALL_RULES`; ``python -m simcheck --list-rules`` prints the
catalogue.

Adding a rule: subclass :class:`Rule`, set ``code``/``title``, yield
:class:`~simcheck.engine.Violation` objects from ``check_file`` (use
``ctx.violation(node, self.code, msg)``), append the class to
:data:`ALL_RULES`, and add a good/bad fixture pair to
``tests/tools/test_simcheck.py``. DESIGN.md §9 documents the catalogue.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Type

from simcheck.engine import FileContext, Project, Violation

__all__ = ["Rule", "ALL_RULES", "rule_catalogue"]

#: modules allowed to touch the engine's event-queue internals (the
#: engine proper plus its queue-storage module)
_ENGINE = ("sim/engine.py", "sim/equeue.py")
#: modules allowed to do float-literal arithmetic on ``*_ns`` values
_NS_LAYER = ("model/latency.py", "units.py")
#: the only module allowed to construct :class:`Packet` directly
_PACKET_FACTORY = ("ht/packet.py",)
#: the only module allowed to own randomness
_RNG = ("sim/rng.py",)
#: the only module allowed to arm fault hooks or damage packets
_FAULT_LAYER = ("sim/faults.py",)
#: the modules allowed to initiate recovery actions (health drives,
#: rebalance executes, regions keeps the damage book)
_RECOVERY_LAYER = (
    "cluster/health.py",
    "cluster/rebalance.py",
    "cluster/regions.py",
)


def _dotted(node: ast.AST) -> Optional[str]:
    """Reconstruct a dotted name ("np.random.seed") or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(call: ast.Call) -> Optional[str]:
    """Last path component of the called object's name."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    # a negated float literal (-0.5) parses as UnaryOp(USub, Constant)
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


def _ns_name(node: ast.AST) -> Optional[str]:
    """The ``*_ns`` spelling of a Name/Attribute operand, if any."""
    name: Optional[str] = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Call):
        name = _call_name(node)
    if name and (name.endswith("_ns") or name.endswith("_NS")):
        return name
    return None


class Rule:
    """Base class: one invariant, one code."""

    code: str = ""
    title: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Violation]:
        return ()

    def finalize(self, project: Project) -> Iterable[Violation]:
        return ()


class SIM001EngineInternals(Rule):
    """Event-queue and clock internals stay inside the engine modules
    (``sim/engine.py`` and its queue storage ``sim/equeue.py``).

    Any touch of ``_now``/``_heap``/``_ready``/``_seq``/``_equeue``
    elsewhere can rewind the clock or reorder the event queue behind
    the determinism guarantee's back.
    """

    code = "SIM001"
    title = "engine event-queue/clock internals touched outside sim/engine.py"

    # NOTE: deliberately does not include "_queue" — Resource._queue in
    # sim/resources.py is an ordinary waiter deque, not engine state;
    # the Simulator's queue object is named "_equeue" for this reason.
    _INTERNALS = frozenset({"_now", "_heap", "_seq", "_ready", "_equeue"})

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_module(*_ENGINE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in self._INTERNALS:
                yield ctx.violation(
                    node,
                    self.code,
                    f"access to simulator internal '.{node.attr}' — only "
                    "sim/engine.py may manipulate the clock or event heap",
                )


class SIM002TimedCostViaTimeout(Rule):
    """All timed cost flows through ``Simulator.timeout`` / the charge
    helpers; no component schedules events behind the engine's API.
    """

    code = "SIM002"
    title = "timed cost scheduled outside Simulator.timeout/charge helpers"

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_module(*_ENGINE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "_schedule":
                yield ctx.violation(
                    node,
                    self.code,
                    "direct call to Simulator._schedule — charge time via "
                    "sim.timeout(...) so cost is counted exactly once",
                )
            elif name == "Timeout" and isinstance(node.func, ast.Name):
                yield ctx.violation(
                    node,
                    self.code,
                    "direct Timeout(...) construction — use sim.timeout(...)",
                )
            elif name in ("heappush", "heappop", "heapify"):
                dotted = _dotted(node.func)
                if dotted is None or dotted.startswith("heapq."):
                    yield ctx.violation(
                        node,
                        self.code,
                        f"{name}() on an event heap outside the engine",
                    )


class SIM003FloatNsDrift(Rule):
    """No float-literal arithmetic on ``*_ns`` values outside the
    latency/units layer.

    The batch path charges ``N * per_line_ns`` where the scalar path
    sums N separate timeouts; ad-hoc float factors applied elsewhere
    drift the two apart below the equivalence suites' tolerance until
    they silently disagree.
    """

    code = "SIM003"
    title = "float-literal arithmetic on *_ns value outside latency/units layer"

    _OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div)

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_module(*_NS_LAYER):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, self._OPS):
                operands = (node.left, node.right)
                literal = next(
                    (o for o in operands if _is_float_literal(o)), None
                )
                named = next(
                    (n for o in operands if (n := _ns_name(o))), None
                )
                if literal is not None and named is not None:
                    yield ctx.violation(
                        node,
                        self.code,
                        f"float literal combined with '{named}' — derive "
                        "the constant in model/latency.py or units.py "
                        "instead of inlining a drift-prone factor",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, self._OPS
            ):
                named = _ns_name(node.target)
                if named is not None and _is_float_literal(node.value):
                    yield ctx.violation(
                        node,
                        self.code,
                        f"float literal folded into '{named}' in place",
                    )


class SIM004PacketFactories(Rule):
    """HT packets are constructed only via the ``ht/packet.py``
    factories, so burst/size/payload validation cannot be bypassed.

    Applies to production code; tests may build malformed packets on
    purpose to exercise the validators.
    """

    code = "SIM004"
    title = "Packet constructed outside the ht/packet.py factories"

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_module(*_PACKET_FACTORY) or ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _call_name(node) == "Packet":
                yield ctx.violation(
                    node,
                    self.code,
                    "direct Packet(...) construction — use a make_* factory "
                    "or clone_packet() from repro.ht.packet",
                )


class SIM005BatchTwinCoverage(Rule):
    """Every public accessor defaulting ``batch=True`` must have its
    ``batch=False`` twin exercised by a test in the scanned set.

    The batched fast path is only trustworthy relative to the scalar
    reference walk; an accessor whose scalar twin no test ever selects
    can drift without any suite noticing. Enforced only when the run
    includes test files (``python -m simcheck src tests``).
    """

    code = "SIM005"
    title = "batch=True accessor without a batch=False twin in any test"

    def finalize(self, project: Project) -> Iterator[Violation]:
        if not project.has_tests:
            return
        referenced: set[str] = set()
        for ctx in project.test_files:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                for kw in node.keywords:
                    if kw.arg != "batch":
                        continue
                    # any explicit batch= that is not literally True
                    # exercises the scalar twin (equivalence drivers
                    # pass a looped variable)
                    if not (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        name = _call_name(node)
                        if name:
                            referenced.add(name)
        for ctx in project.src_files:
            yield from self._check_src_file(ctx, referenced)

    def _check_src_file(
        self, ctx: FileContext, referenced: set[str]
    ) -> Iterator[Violation]:
        class_stack: list[str] = []

        def visit(node: ast.AST) -> Iterator[Violation]:
            if isinstance(node, ast.ClassDef):
                class_stack.append(node.name)
                for child in ast.iter_child_nodes(node):
                    yield from visit(child)
                class_stack.pop()
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_def(ctx, node, class_stack, referenced)
            for child in ast.iter_child_nodes(node):
                yield from visit(child)

        yield from visit(ctx.tree)

    def _check_def(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_stack: list[str],
        referenced: set[str],
    ) -> Iterator[Violation]:
        public_name = node.name
        if public_name == "__init__" and class_stack:
            public_name = class_stack[-1]
        if public_name.startswith("_"):
            return
        args = node.args
        pairs = list(
            zip(args.args[len(args.args) - len(args.defaults):], args.defaults)
        ) + [
            (a, d)
            for a, d in zip(args.kwonlyargs, args.kw_defaults)
            if d is not None
        ]
        for arg, default in pairs:
            if (
                arg.arg == "batch"
                and isinstance(default, ast.Constant)
                and default.value is True
                and public_name not in referenced
            ):
                yield ctx.violation(
                    node,
                    self.code,
                    f"'{public_name}' defaults batch=True but no scanned "
                    "test calls it with batch=False — the scalar reference "
                    "twin is unguarded",
                )


class SIM006DeterminismHazards(Rule):
    """Sources of run-to-run nondeterminism.

    * unseeded stdlib ``random`` / numpy legacy global RNG state — all
      randomness must derive from :mod:`repro.sim.rng` streams (or an
      explicitly seeded ``random.Random(seed)`` in tests);
    * wall-clock ``time.*`` — simulated time comes from ``sim.now``;
    * iteration over set displays/calls — set order varies with PYTHONHASHSEED
      for str keys and poisons replay; iterate ``sorted(...)`` instead;
    * mutable default arguments — state leaks between calls;
    * bare ``except:`` — swallows engine errors the sanitizers raise.
    """

    code = "SIM006"
    title = "determinism hazard (random/time/set-order/mutable default/bare except)"

    _NP_ALLOWED = frozenset(
        {"default_rng", "Generator", "SeedSequence", "PCG64", "BitGenerator"}
    )
    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque"})

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_module(*_RNG):
            return
        for node in ast.walk(ctx.tree):
            yield from self._check_node(ctx, node)

    def _check_node(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Violation]:
        if isinstance(node, ast.ImportFrom) and node.module in (
            "random",
            "time",
        ):
            yield ctx.violation(
                node,
                self.code,
                f"'from {node.module} import ...' — use repro.sim.rng "
                "streams / sim.now instead",
            )
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node) or ""
            head, _, tail = dotted.partition(".")
            if head == "time" and tail:
                yield ctx.violation(
                    node,
                    self.code,
                    f"wall-clock '{dotted}' — simulated time must come "
                    "from sim.now",
                )
            elif head == "random" and tail and tail != "Random":
                yield ctx.violation(
                    node,
                    self.code,
                    f"global-state '{dotted}' — derive a stream from "
                    "repro.sim.rng (or a seeded random.Random in tests)",
                )
            elif (
                dotted.startswith(("np.random.", "numpy.random."))
                and node.attr not in self._NP_ALLOWED
            ):
                yield ctx.violation(
                    node,
                    self.code,
                    f"numpy legacy global RNG '{dotted}' — use "
                    "np.random.default_rng via repro.sim.rng",
                )
        elif isinstance(node, ast.Call) and _call_name(node) == "Random":
            if not node.args and not node.keywords:
                yield ctx.violation(
                    node,
                    self.code,
                    "unseeded random.Random() — pass an explicit seed",
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_defaults(ctx, node)
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            yield ctx.violation(
                node,
                self.code,
                "bare 'except:' — catches and hides SanitizeError and "
                "engine failures; name the exception",
            )
        elif isinstance(
            node, (ast.For, ast.comprehension)
        ):
            iter_node = node.iter
            if self._is_set_expr(iter_node):
                yield ctx.violation(
                    iter_node,
                    self.code,
                    "iteration over a set — order varies across runs for "
                    "str members; wrap in sorted(...)",
                )

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return isinstance(node, ast.Call) and _call_name(node) in (
            "set",
            "frozenset",
        )

    def _check_defaults(
        self, ctx: FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and _call_name(default) in self._MUTABLE_CALLS
            )
            if mutable:
                yield ctx.violation(
                    default,
                    self.code,
                    f"mutable default argument in '{node.name}' — state "
                    "leaks across calls; default to None",
                )


class SIM007FaultInjectionLayer(Rule):
    """Faults enter the simulation only through ``sim/faults.py``.

    Arming a component's ``_faults`` hook or stamping a packet's
    corruption mark anywhere else injects a failure the active
    :class:`~repro.sim.faults.FaultPlan` does not describe, so the run
    can no longer be replayed from its plan + seed. Applies to tests
    too: scenarios must build a plan, not poke the hooks.
    """

    code = "SIM007"
    title = "fault hook armed / packet damaged outside sim/faults.py"

    _META_KEYS = frozenset({"corrupt", "dropped", "faulted"})

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_module(*_FAULT_LAYER):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_target(ctx, target, node.value)
            elif isinstance(node, ast.AugAssign):
                yield from self._check_target(ctx, node.target, node.value)

    def _check_target(
        self, ctx: FileContext, target: ast.AST, value: ast.AST
    ) -> Iterator[Violation]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._check_target(ctx, elt, value)
            return
        if isinstance(target, ast.Attribute) and target.attr == "_faults":
            # hook sites may (re)initialise the hook to None; only the
            # fault layer may arm it with a live injector
            if not (isinstance(value, ast.Constant) and value.value is None):
                yield ctx.violation(
                    target,
                    self.code,
                    "fault hook '._faults' armed outside sim/faults.py — "
                    "use Cluster.arm_faults()/FaultInjector.attach_* so "
                    "the run stays described by its FaultPlan",
                )
        elif isinstance(target, ast.Subscript):
            base = target.value
            key = target.slice
            marks = isinstance(base, ast.Attribute) and base.attr == "meta" and (
                (isinstance(key, ast.Constant) and key.value in self._META_KEYS)
                or (isinstance(key, ast.Name) and key.id == "CORRUPT_KEY")
            )
            if marks:
                yield ctx.violation(
                    target,
                    self.code,
                    "packet damage mark written outside sim/faults.py — "
                    "add a corrupt_packets()/drop_packets() rule to a "
                    "FaultPlan instead",
                )


class SIM008RecoveryDiscipline(Rule):
    """Failure errors stay loud; recovery actions stay layered.

    * ``except RemoteAccessError: pass`` (or ``RecoveryError``, or a
      tuple containing either) silently swallows a machine-check-style
      failure — exactly the error class PR 6 made structured so callers
      can react. Handle it (degrade, record, re-raise) or let it
      propagate.
    * Recovery *actions* — repointing pages, dropping a dead donor's
      segments, recording damage, rebinding allocations, re-reserving
      capacity — may only be initiated from the recovery layer
      (``cluster/health.py`` drives, ``cluster/rebalance.py`` executes,
      ``cluster/regions.py`` keeps the damage book). Anywhere else they
      bypass the idempotence guards and the MTTR accounting. Tests are
      exempt from the layering (they exercise the mechanics directly)
      but never from the swallow check.
    """

    code = "SIM008"
    title = "RemoteAccessError swallowed / recovery action outside recovery layer"

    _ERRORS = frozenset({"RemoteAccessError", "RecoveryError"})
    _ACTIONS = frozenset(
        {
            "repoint_page",
            "drop_donor_segments",
            "record_damage",
            "rebind_allocation",
            "re_reserve",
            "heal_sessions",
            "expire_reservation",
        }
    )

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)
            elif (
                isinstance(node, ast.Call)
                and not ctx.is_test
                and not ctx.in_module(*_RECOVERY_LAYER)
            ):
                name = _call_name(node)
                if name in self._ACTIONS:
                    yield ctx.violation(
                        node,
                        self.code,
                        f"recovery action '{name}()' initiated outside the "
                        "recovery layer — route it through cluster/health.py "
                        "or cluster/rebalance.py so idempotence guards and "
                        "MTTR accounting apply",
                    )

    def _check_handler(
        self, ctx: FileContext, node: ast.ExceptHandler
    ) -> Iterator[Violation]:
        caught = self._caught_names(node.type)
        named = caught & self._ERRORS
        if not named:
            return
        if all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in node.body
        ):
            yield ctx.violation(
                node,
                self.code,
                f"'{sorted(named)[0]}' swallowed by an empty except "
                "handler — a machine-check-style failure must be "
                "handled (degrade, record, re-raise), not hidden",
            )

    def _caught_names(self, type_node: "ast.expr | None") -> set[str]:
        if type_node is None:
            return set()
        if isinstance(type_node, ast.Tuple):
            names = set()
            for elt in type_node.elts:
                names |= self._caught_names(elt)
            return names
        if isinstance(type_node, ast.Attribute):
            return {type_node.attr}
        if isinstance(type_node, ast.Name):
            return {type_node.id}
        return set()


# the flow-aware rules live in their own module (they need the
# dataflow engine); imported here, after Rule is defined, so that
# ALL_RULES stays the single registry
from simcheck.flowrules import (  # noqa: E402
    SIM009UnitInference,
    SIM010DisarmedPathProof,
    SIM011ExceptionFlowAudit,
    SIM012StateMachineConformance,
)

#: registration order == reporting precedence
ALL_RULES: list[Type[Rule]] = [
    SIM001EngineInternals,
    SIM002TimedCostViaTimeout,
    SIM003FloatNsDrift,
    SIM004PacketFactories,
    SIM005BatchTwinCoverage,
    SIM006DeterminismHazards,
    SIM007FaultInjectionLayer,
    SIM008RecoveryDiscipline,
    SIM009UnitInference,
    SIM010DisarmedPathProof,
    SIM011ExceptionFlowAudit,
    SIM012StateMachineConformance,
]


def rule_catalogue() -> list[tuple[str, str, str]]:
    """(code, title, docstring) for every registered rule."""
    return [
        (cls.code, cls.title, (cls.__doc__ or "").strip())
        for cls in ALL_RULES
    ]
