"""Project-wide symbol table.

One pass over every scanned file collects the definitions the
cross-file rules resolve against: functions and methods (with their
parameter lists), classes (with their method maps and base-class
names), and module-level constants. The table is name-indexed — the
repo is a single package, so short-name resolution plus the class
context of ``self`` calls is enough for the conservative may-call
graph in :mod:`simcheck.callgraph`.

Qualified names are ``<rel_path>::<Class>.<method>`` /
``<rel_path>::<function>`` so a symbol is addressable in diagnostics
without inventing an import system.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from simcheck.engine import FileContext

__all__ = ["FunctionInfo", "ClassInfo", "SymbolTable"]


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    name: str
    rel_path: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    class_name: Optional[str]
    #: positional-or-keyword parameter names (incl. ``self``)
    params: tuple[str, ...]
    is_test_file: bool

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def call_params(self) -> tuple[str, ...]:
        """Parameter names as seen by an ``obj.method(...)`` call site
        (``self``/``cls`` dropped for methods)."""
        if self.is_method and self.params and self.params[0] in ("self", "cls"):
            return self.params[1:]
        return self.params


@dataclass
class ClassInfo:
    """One class definition and its directly defined methods."""

    name: str
    rel_path: str
    bases: tuple[str, ...]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


class SymbolTable:
    """Name-indexed view of every definition in the scanned file set."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        #: short name -> every def with that name (functions + methods)
        self.by_name: dict[str, list[FunctionInfo]] = {}
        #: class name -> every class with that name
        self.classes: dict[str, list[ClassInfo]] = {}
        #: module-level Name constants per file: rel_path -> {name: node}
        self.module_constants: dict[str, dict[str, ast.expr]] = {}

    @classmethod
    def build(cls, files: Sequence["FileContext"]) -> "SymbolTable":
        table = cls()
        for ctx in files:
            table._index_file(ctx)
        return table

    def _index_file(self, ctx: "FileContext") -> None:
        consts: dict[str, ast.expr] = {}
        self.module_constants[ctx.rel_path] = consts
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        consts[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    consts[stmt.target.id] = stmt.value
        self._index_scope(ctx, ctx.tree.body, class_info=None)

    def _index_scope(
        self,
        ctx: "FileContext",
        body: Sequence[ast.stmt],
        class_info: Optional[ClassInfo],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, stmt, class_info)
                # nested defs are indexed too (flow rules analyze them
                # separately); their class context is the enclosing one
                self._index_scope(ctx, stmt.body, class_info)
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(
                    name=stmt.name,
                    rel_path=ctx.rel_path,
                    bases=tuple(
                        base.id
                        for base in stmt.bases
                        if isinstance(base, ast.Name)
                    ),
                )
                self.classes.setdefault(stmt.name, []).append(info)
                self._index_scope(ctx, stmt.body, info)
            elif isinstance(stmt, (ast.If, ast.Try)):
                # defs behind TYPE_CHECKING / version guards
                self._index_scope(ctx, stmt.body, class_info)
                self._index_scope(ctx, stmt.orelse, class_info)

    def _add_function(
        self,
        ctx: "FileContext",
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        class_info: Optional[ClassInfo],
    ) -> None:
        scope = f"{class_info.name}." if class_info is not None else ""
        qualname = f"{ctx.rel_path}::{scope}{node.name}"
        if qualname in self.functions:
            return  # overload/redefinition: first one wins
        params = tuple(
            arg.arg
            for arg in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            )
        )
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            rel_path=ctx.rel_path,
            node=node,
            class_name=class_info.name if class_info is not None else None,
            params=params,
            is_test_file=ctx.is_test,
        )
        self.functions[qualname] = info
        self.by_name.setdefault(node.name, []).append(info)
        if class_info is not None and node.name not in class_info.methods:
            class_info.methods[node.name] = info

    # -- resolution helpers ----------------------------------------------
    def methods_named(self, name: str) -> list[FunctionInfo]:
        return [f for f in self.by_name.get(name, ()) if f.is_method]

    def functions_named(self, name: str) -> list[FunctionInfo]:
        return [f for f in self.by_name.get(name, ()) if not f.is_method]

    def class_method(
        self, class_name: str, method: str
    ) -> list[FunctionInfo]:
        """*method* resolved on *class_name*, walking name-known bases."""
        out: list[FunctionInfo] = []
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            cname = queue.pop()
            if cname in seen:
                continue
            seen.add(cname)
            for info in self.classes.get(cname, ()):
                hit = info.methods.get(method)
                if hit is not None:
                    out.append(hit)
                queue.extend(info.bases)
        return out
