"""CLI: ``python -m simcheck [paths ...]``.

Exit status: 0 clean, 1 violations found, 2 usage/parse error.

Examples::

    PYTHONPATH=src:tools python -m simcheck src tests
    PYTHONPATH=src:tools python -m simcheck src --format json
    PYTHONPATH=src:tools python -m simcheck --list-rules
    PYTHONPATH=src:tools python -m simcheck src --select SIM003,SIM006
    PYTHONPATH=src:tools python -m simcheck src tests --strict-pragmas
    PYTHONPATH=src:tools python -m simcheck src --format sarif
    PYTHONPATH=src:tools python -m simcheck src --no-cache
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from simcheck.cache import ResultCache
from simcheck.engine import check_paths
from simcheck.reporters import render_json, render_sarif, render_text
from simcheck.rules import ALL_RULES, rule_catalogue


def _codes(raw: str) -> set[str]:
    return {c.strip().upper() for c in raw.split(",") if c.strip()}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m simcheck",
        description="repo-specific static analysis for the timing model",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src tests, "
        "whichever exist)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--strict-pragmas",
        action="store_true",
        help="report stale suppression pragmas as SIM000 violations",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=".simcheck-cache.json",
        help="result-cache file (default: .simcheck-cache.json)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache for this run",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, title, doc in rule_catalogue():
            print(f"{code}  {title}")
            summary = doc.splitlines()[0] if doc else ""
            if summary:
                print(f"        {summary}")
        return 0

    paths = args.paths or [p for p in ("src", "tests") if Path(p).is_dir()]
    if not paths:
        parser.error("no paths given and no src/ or tests/ directory here")

    known = {cls.code for cls in ALL_RULES}
    selected = _codes(args.select) if args.select else set(known)
    disabled = _codes(args.disable) if args.disable else set()
    for bad in (selected | disabled) - known:
        parser.error(f"unknown rule code {bad!r} (known: {sorted(known)})")
    rules = [
        cls()
        for cls in ALL_RULES
        if cls.code in selected and cls.code not in disabled
    ]

    cache = None if args.no_cache else ResultCache(args.cache)
    try:
        reports, violations = check_paths(
            paths,
            rules=rules,
            cache=cache,
            strict_pragmas=args.strict_pragmas,
        )
    except (FileNotFoundError, SyntaxError, ValueError) as exc:
        print(f"simcheck: error: {exc}", file=sys.stderr)
        return 2

    render = {
        "json": render_json,
        "sarif": render_sarif,
    }.get(args.format, render_text)
    print(render(reports, violations))
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
