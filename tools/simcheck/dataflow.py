"""Intraprocedural forward dataflow over a statement-level CFG.

This is the engine under the flow-aware rules (SIM009–SIM012): a
control-flow graph built from one function body, a small abstract-
domain API, and a worklist solver that runs any finite-height domain
to a fixpoint. The design goal is *sound enough for the repo's
invariants*, not a general-purpose analyzer:

* blocks hold **simple statements only** — branching structure lives
  in edges, each optionally labeled with the branch condition and the
  taken polarity, so domains can refine state on `if x is not None:`
  style guards (the static form of the DESIGN §10/§12 "zero-cost when
  disarmed" contract);
* compound statements are flattened: `for`/`with` headers become
  synthetic binding statements (:class:`LoopBind` and a plain
  ``ast.Assign``) so domains see every name binding exactly once and
  expression walks never visit a sub-statement twice;
* `try` is approximated conservatively — every block of the protected
  body gets an edge into each handler, so a handler's entry state is
  the join over all points the exception may have left;
* nested function/class definitions are opaque statements (each
  nested function is analyzed separately by the rules).

Domains implement four hooks (:class:`Domain`): ``initial`` /
``copy`` / ``join`` mutate-free state handling, a per-statement
``transfer``, and ``refine_atom`` for the leaf comparisons of branch
conditions. Boolean structure (``not`` / ``and`` / ``or`` /
constants) is handled once, here, by :func:`apply_refinement`, so
domains only reason about atoms.

:func:`CFG.dominators` provides classic iterative dominator sets; the
guard analysis of SIM010 is the dataflow-refinement formulation of
"every path from entry to the use crosses a dominating guard", which
coincides with dominator-based guarding on the CFGs this codebase
produces (guards without intervening kills).
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Iterator, Optional, Sequence

__all__ = [
    "LoopBind",
    "Block",
    "CFG",
    "build_cfg",
    "Domain",
    "Analysis",
    "analyze",
    "apply_refinement",
    "iter_expressions",
    "dump_key",
]


class LoopBind(ast.stmt):
    """Synthetic statement: *target* is bound to one element of *iter*.

    Emitted at the top of a ``for`` body (and once per comprehension
    generator) so domains observe the binding without re-walking the
    loop's sub-statements.
    """

    _fields = ("target", "iter")

    def __init__(self, target: ast.expr, iter: ast.expr) -> None:  # noqa: A002
        super().__init__()
        self.target = target
        self.iter = iter


class Block:
    """One basic block: simple statements plus labeled out-edges."""

    __slots__ = ("idx", "stmts", "succs", "preds")

    def __init__(self, idx: int) -> None:
        self.idx = idx
        self.stmts: list[ast.stmt] = []
        #: (target block index, branch test or None, polarity or None)
        self.succs: list[tuple[int, Optional[ast.expr], Optional[bool]]] = []
        self.preds: list[int] = []


class CFG:
    """Statement-level control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry = self._new().idx
        self.exit = self._new().idx

    def _new(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def _edge(
        self,
        src: int,
        dst: int,
        test: Optional[ast.expr] = None,
        branch: Optional[bool] = None,
    ) -> None:
        self.blocks[src].succs.append((dst, test, branch))
        self.blocks[dst].preds.append(src)

    def dominators(self) -> list[set[int]]:
        """``dom[b]`` = indices of blocks on *every* entry→b path.

        Classic iterative fixpoint; unreachable blocks dominate
        vacuously (their set is the full block set).
        """
        every = set(range(len(self.blocks)))
        dom: list[set[int]] = [set(every) for _ in self.blocks]
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for block in self.blocks:
                if block.idx == self.entry:
                    continue
                preds = block.preds
                if not preds:
                    continue
                new = set(every)
                for p in preds:
                    new &= dom[p]
                new.add(block.idx)
                if new != dom[block.idx]:
                    dom[block.idx] = new
                    changed = True
        return dom


class _Builder:
    """Recursive CFG construction with break/continue targets."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.current = self.cfg.entry
        #: (continue target, break target) stack
        self.loops: list[tuple[int, int]] = []
        #: blocks of the innermost active try body (for handler edges)
        self.try_blocks: list[list[int]] = []

    # -- helpers ---------------------------------------------------------
    def _start(self) -> int:
        block = self.cfg._new()
        return block.idx

    def _note(self, idx: int) -> None:
        for scope in self.try_blocks:
            scope.append(idx)

    def _append(self, stmt: ast.stmt) -> None:
        self.cfg.blocks[self.current].stmts.append(stmt)

    def _split(self) -> int:
        """Close the current block and continue in a fresh successor."""
        new = self._start()
        self._note(new)
        self.cfg._edge(self.current, new)
        self.current = new
        return new

    # -- statement dispatch ----------------------------------------------
    def build(self, body: Sequence[ast.stmt]) -> None:
        self._note(self.current)
        self.emit_body(body)
        self.cfg._edge(self.current, self.cfg.exit)

    def emit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.emit(stmt)

    def emit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._emit_if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._emit_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._emit_for(stmt)
        elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self._emit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._emit_with(stmt)
        elif isinstance(stmt, ast.Assert):
            self._emit_assert(stmt)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self._append(stmt)
            self.cfg._edge(self.current, self.cfg.exit)
            self.current = self._start()  # unreachable continuation
            self._note(self.current)
        elif isinstance(stmt, ast.Break):
            if self.loops:
                self.cfg._edge(self.current, self.loops[-1][1])
            self.current = self._start()
            self._note(self.current)
        elif isinstance(stmt, ast.Continue):
            if self.loops:
                self.cfg._edge(self.current, self.loops[-1][0])
            self.current = self._start()
            self._note(self.current)
        elif isinstance(stmt, ast.Match):
            self._emit_match(stmt)
        else:
            # simple statement (incl. nested FunctionDef/ClassDef,
            # which rules treat as opaque)
            self._append(stmt)

    def _emit_if(self, stmt: ast.If) -> None:
        head = self.current
        then_start = self._start()
        self._note(then_start)
        self.cfg._edge(head, then_start, stmt.test, True)
        self.current = then_start
        self.emit_body(stmt.body)
        then_end = self.current

        else_start = self._start()
        self._note(else_start)
        self.cfg._edge(head, else_start, stmt.test, False)
        self.current = else_start
        self.emit_body(stmt.orelse)
        else_end = self.current

        join = self._start()
        self._note(join)
        self.cfg._edge(then_end, join)
        self.cfg._edge(else_end, join)
        self.current = join

    def _emit_while(self, stmt: ast.While) -> None:
        header = self._split()
        after = self._start()
        self._note(after)
        body_start = self._start()
        self._note(body_start)
        self.cfg._edge(header, body_start, stmt.test, True)
        self.cfg._edge(header, after, stmt.test, False)
        self.loops.append((header, after))
        self.current = body_start
        self.emit_body(stmt.body)
        self.cfg._edge(self.current, header)
        self.loops.pop()
        # while/else: else runs on normal exit; approximated by the
        # false edge already pointing at `after`
        self.current = after
        self.emit_body(stmt.orelse)

    def _emit_for(self, stmt: "ast.For | ast.AsyncFor") -> None:
        header = self._split()
        after = self._start()
        self._note(after)
        body_start = self._start()
        self._note(body_start)
        self.cfg._edge(header, body_start)
        self.cfg._edge(header, after)
        bind = LoopBind(stmt.target, stmt.iter)
        ast.copy_location(bind, stmt)
        self.cfg.blocks[body_start].stmts.append(bind)
        self.loops.append((header, after))
        self.current = body_start
        self.emit_body(stmt.body)
        self.cfg._edge(self.current, header)
        self.loops.pop()
        self.current = after
        self.emit_body(stmt.orelse)

    def _emit_try(self, stmt: ast.Try) -> None:
        scope: list[int] = []
        self.try_blocks.append(scope)
        self._split()  # noted into `scope` (and any enclosing try)
        self.emit_body(stmt.body)
        body_end = self.current
        self.try_blocks.pop()

        self.current = body_end
        self.emit_body(stmt.orelse)
        clean_end = self.current

        join = self._start()
        self._note(join)
        self.cfg._edge(clean_end, join)
        for handler in stmt.handlers:
            h_start = self._start()
            self._note(h_start)
            for idx in scope:
                self.cfg._edge(idx, h_start)
            self.current = h_start
            if handler.name:
                # `except E as e:` binds e; model as an opaque assign
                bind = ast.Assign(
                    targets=[ast.Name(id=handler.name, ctx=ast.Store())],
                    value=ast.Constant(value=None),
                )
                ast.copy_location(bind, handler)
                ast.fix_missing_locations(bind)
                self._append(bind)
            self.emit_body(handler.body)
            self.cfg._edge(self.current, join)
        self.current = join
        self.emit_body(stmt.finalbody)

    def _emit_with(self, stmt: "ast.With | ast.AsyncWith") -> None:
        for item in stmt.items:
            if item.optional_vars is not None:
                bind = ast.Assign(
                    targets=[item.optional_vars], value=item.context_expr
                )
                ast.copy_location(bind, stmt)
                ast.fix_missing_locations(bind)
                self._append(bind)
            else:
                expr = ast.Expr(value=item.context_expr)
                ast.copy_location(expr, stmt)
                self._append(expr)
        self.emit_body(stmt.body)

    def _emit_assert(self, stmt: ast.Assert) -> None:
        head = self.current
        self.cfg._edge(head, self.cfg.exit, stmt.test, False)
        cont = self._start()
        self._note(cont)
        self.cfg._edge(head, cont, stmt.test, True)
        self.current = cont

    def _emit_match(self, stmt: ast.Match) -> None:
        head = self.current
        join = self._start()
        self._note(join)
        for case in stmt.cases:
            c_start = self._start()
            self._note(c_start)
            self.cfg._edge(head, c_start)
            self.current = c_start
            self.emit_body(case.body)
            self.cfg._edge(self.current, join)
        self.cfg._edge(head, join)  # no case matched
        self.current = join


def build_cfg(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
    """Build the CFG of *fn*'s body (sub-functions are opaque)."""
    builder = _Builder()
    builder.build(fn.body)
    return builder.cfg


class Domain:
    """Abstract-domain API for the forward solver.

    States must be treated as values: the solver calls :meth:`copy`
    before mutating via :meth:`transfer` / :meth:`refine_atom`, and
    :meth:`join` must return a fresh state. All domains used here have
    finite height, so the worklist terminates.
    """

    def initial(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> Any:
        raise NotImplementedError

    def copy(self, state: Any) -> Any:
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def equal(self, a: Any, b: Any) -> bool:
        return bool(a == b)

    def transfer(self, state: Any, stmt: ast.stmt) -> None:
        """Mutate *state* across one simple statement."""

    def refine_atom(self, state: Any, expr: ast.expr, positive: bool) -> None:
        """Mutate *state* knowing atom *expr* evaluated to *positive*."""


def apply_refinement(
    domain: Domain, state: Any, test: ast.expr, positive: bool
) -> None:
    """Push branch knowledge ``test == positive`` into *state*.

    Handles the boolean skeleton (``not``, ``and``/``or`` with
    short-circuit polarity, parenthesized nesting, ``x if c else y``
    ignored); leaf atoms go to ``domain.refine_atom``.
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        apply_refinement(domain, state, test.operand, not positive)
        return
    if isinstance(test, ast.BoolOp):
        is_and = isinstance(test.op, ast.And)
        if positive is is_and:
            # `and` true / `or` false: every operand has that polarity
            for value in test.values:
                apply_refinement(domain, state, value, positive)
        # `and` false / `or` true: unknown which operand decided; no info
        return
    if isinstance(test, ast.Constant):
        return
    domain.refine_atom(state, test, positive)


class Analysis:
    """Solved dataflow of one function: per-block entry states."""

    def __init__(self, cfg: CFG, domain: Domain, block_in: list[Any]) -> None:
        self.cfg = cfg
        self.domain = domain
        #: entry state per block; None == unreachable
        self.block_in = block_in

    def statement_states(self) -> Iterator[tuple[ast.stmt, Any]]:
        """Yield ``(stmt, state_before_stmt)`` over every reachable
        statement, in block order. The yielded state is a private copy
        per block walk; callers may inspect but must not keep it."""
        for block in self.cfg.blocks:
            state = self.block_in[block.idx]
            if state is None:
                continue
            state = self.domain.copy(state)
            for stmt in block.stmts:
                yield stmt, state
                self.domain.transfer(state, stmt)


def analyze(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef", domain: Domain
) -> Analysis:
    """Run *domain* forward over *fn* to a fixpoint."""
    cfg = build_cfg(fn)
    block_in: list[Any] = [None] * len(cfg.blocks)
    block_in[cfg.entry] = domain.initial(fn)
    worklist = [cfg.entry]
    while worklist:
        idx = worklist.pop()
        state = block_in[idx]
        if state is None:  # pragma: no cover - defensive
            continue
        out = domain.copy(state)
        for stmt in cfg.blocks[idx].stmts:
            domain.transfer(out, stmt)
        for target, test, branch in cfg.blocks[idx].succs:
            edge_state = domain.copy(out)
            if test is not None and branch is not None:
                apply_refinement(domain, edge_state, test, branch)
            old = block_in[target]
            new = edge_state if old is None else domain.join(old, edge_state)
            if old is None or not domain.equal(new, old):
                block_in[target] = new
                worklist.append(target)
    return Analysis(cfg, domain, block_in)


# -- expression utilities shared by the flow rules ------------------------

_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def iter_expressions(node: ast.AST) -> Iterator[ast.expr]:
    """Walk the expressions of one *simple* statement (or expression),
    pruning nested function/class/lambda bodies, which are analyzed
    separately."""
    stack = list(ast.iter_child_nodes(node))
    if isinstance(node, ast.expr):
        stack = [node]
    while stack:
        child = stack.pop()
        if isinstance(child, _OPAQUE):
            continue
        if isinstance(child, ast.expr):
            yield child
        stack.extend(ast.iter_child_nodes(child))


def dump_key(expr: ast.expr) -> Optional[str]:
    """A structural key for Name/Attribute/Subscript chains, used to
    match a guard's subject against a later use (``self._faults``,
    ``sharers[i]``). Returns None for expressions that are not stable
    l-value-like chains (calls, literals, arithmetic)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = dump_key(expr.value)
        return None if base is None else f"{base}.{expr.attr}"
    if isinstance(expr, ast.Subscript):
        base = dump_key(expr.value)
        if base is None:
            return None
        index = expr.slice
        if isinstance(index, ast.Constant):
            return f"{base}[{index.value!r}]"
        key = dump_key(index)
        return None if key is None else f"{base}[{key}]"
    return None
