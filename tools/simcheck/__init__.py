"""simcheck — repo-specific static analysis for the timing model.

The paper's claim rests on cycle-accounting being trustworthy: a
non-coherent region is only "zero overhead" if every HT hop, RMC pipe
and DRAM row charge is counted exactly once. Batching made that a
*convention* (arithmetic N-per-line charges must equal the scalar
walk); simcheck machine-checks the conventions the codebase relies on:

========  =============================================================
code      invariant
========  =============================================================
SIM001    event-heap / ``Simulator._now`` internals touched only inside
          ``sim/engine.py``
SIM002    timed cost flows through ``Simulator.timeout`` (no direct
          ``Timeout``/``_schedule``/``heapq`` scheduling elsewhere)
SIM003    no float-literal arithmetic on ``*_ns`` values outside the
          latency/units layer (float drift silently breaks the
          batch-vs-scalar elapsed-time diff)
SIM004    HT packets constructed only via ``ht/packet.py`` factories
SIM005    every public accessor defaulting ``batch=True`` has a
          ``batch=False`` twin exercised by an equivalence test
SIM006    determinism hazards: unseeded stdlib ``random``/wall-clock
          ``time`` use, set-order iteration, mutable default args,
          bare ``except``
SIM007    fault hooks armed / packets damaged only from the fault
          layer (``sim/faults.py``)
SIM008    recovery actions initiated only from the recovery layer, no
          silently swallowed ``RemoteAccessError``
========  =============================================================

Version 2 adds a flow-aware layer (symbol table + call graph +
intraprocedural dataflow, see ``simcheck/dataflow.py``) with four
rules that reason across assignments, branches and call boundaries:

========  =============================================================
code      invariant
========  =============================================================
SIM009    unit inference: no mixed ns/bytes/lines arithmetic, returns,
          or call arguments (supersedes SIM003's literal heuristic)
SIM010    disarmed-path proof: hot-path hook use (``_faults``,
          ``audit``) dominated by an ``is not None`` guard
SIM011    exception-flow audit: no ``except`` swallows
          ``RemoteAccessError`` before the recovery layer
SIM012    state-machine conformance: every literal LeaseState/MESI
          store is a legal transition-table edge from proven sources
========  =============================================================

Violations are suppressed per line with ``# simcheck: disable=SIMxxx``
or per file with ``# simcheck: disable-file=SIMxxx``; with
``--strict-pragmas``, pragmas that suppress nothing are reported as
SIM000. Results are cached by content hash (``.simcheck-cache.json``)
so warm runs are fast. Run as::

    PYTHONPATH=src:tools python -m simcheck src tests --strict-pragmas
"""

from __future__ import annotations

from simcheck.engine import FileReport, Project, Violation, check_paths
from simcheck.rules import ALL_RULES, rule_catalogue

__version__ = "2.0"

__all__ = [
    "ALL_RULES",
    "FileReport",
    "Project",
    "Violation",
    "check_paths",
    "rule_catalogue",
    "__version__",
]
