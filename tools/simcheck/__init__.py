"""simcheck — repo-specific static analysis for the timing model.

The paper's claim rests on cycle-accounting being trustworthy: a
non-coherent region is only "zero overhead" if every HT hop, RMC pipe
and DRAM row charge is counted exactly once. Batching made that a
*convention* (arithmetic N-per-line charges must equal the scalar
walk); simcheck machine-checks the conventions the codebase relies on:

========  =============================================================
code      invariant
========  =============================================================
SIM001    event-heap / ``Simulator._now`` internals touched only inside
          ``sim/engine.py``
SIM002    timed cost flows through ``Simulator.timeout`` (no direct
          ``Timeout``/``_schedule``/``heapq`` scheduling elsewhere)
SIM003    no float-literal arithmetic on ``*_ns`` values outside the
          latency/units layer (float drift silently breaks the
          batch-vs-scalar elapsed-time diff)
SIM004    HT packets constructed only via ``ht/packet.py`` factories
SIM005    every public accessor defaulting ``batch=True`` has a
          ``batch=False`` twin exercised by an equivalence test
SIM006    determinism hazards: unseeded stdlib ``random``/wall-clock
          ``time`` use, set-order iteration, mutable default args,
          bare ``except``
========  =============================================================

Violations are suppressed per line with ``# simcheck: disable=SIMxxx``
or per file with ``# simcheck: disable-file=SIMxxx``. Run as::

    PYTHONPATH=src:tools python -m simcheck src tests
"""

from __future__ import annotations

from simcheck.engine import FileReport, Project, Violation, check_paths
from simcheck.rules import ALL_RULES, rule_catalogue

__version__ = "1.0"

__all__ = [
    "ALL_RULES",
    "FileReport",
    "Project",
    "Violation",
    "check_paths",
    "rule_catalogue",
    "__version__",
]
