"""Content-hash result caching for warm simcheck runs.

Two tiers, both keyed on content only (no mtimes — edits that revert
byte-for-byte re-hit the cache, edits that change one byte miss):

* **project tier** — a fingerprint over the tool's own sources, the
  active rule codes, the strict-pragmas flag and every scanned file's
  ``(rel_path, sha256)`` pair. A full hit replays the entire run
  (reports, violations, suppressed counts) without parsing anything;
  this is the steady-state of ``benchmarks/check.sh``.
* **file tier** — per-file entries keyed on the file's own hash plus
  the same tool/rule fingerprint. A partial hit (some files edited)
  re-parses the tree — the cross-file passes need every AST — but
  skips re-running the per-file rules, including the dataflow rules,
  on unchanged files.

The store is one JSON document. Any decode problem, schema mismatch
or tool-fingerprint change silently degrades to a cold run: the cache
is an accelerator, never a source of truth.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Optional, Sequence

from simcheck.engine import FileReport, Violation

__all__ = ["ResultCache", "tool_fingerprint"]

_SCHEMA = 1

_tool_fp_memo: dict[str, str] = {}


def tool_fingerprint() -> str:
    """sha256 over the simcheck package's own sources: any edit to the
    analyzer invalidates every cached result."""
    pkg_dir = str(Path(__file__).resolve().parent)
    memo = _tool_fp_memo.get(pkg_dir)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    for path in sorted(Path(pkg_dir).glob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    fp = digest.hexdigest()
    _tool_fp_memo[pkg_dir] = fp
    return fp


def _violations_to_json(violations: Sequence[Violation]) -> list[dict]:
    return [
        {
            "path": v.path,
            "line": v.line,
            "col": v.col,
            "code": v.code,
            "message": v.message,
        }
        for v in violations
    ]


def _violations_from_json(raw: Any) -> list[Violation]:
    return [
        Violation(
            path=entry["path"],
            line=int(entry["line"]),
            col=int(entry["col"]),
            code=entry["code"],
            message=entry["message"],
        )
        for entry in raw
    ]


class ResultCache:
    """The on-disk store plus hit/miss accounting for one run."""

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self.file_hits = 0
        self.file_misses = 0
        self.project_hit = False
        self._data = self._load()

    def _load(self) -> dict:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            raw = None
        if (
            not isinstance(raw, dict)
            or raw.get("schema") != _SCHEMA
            or raw.get("tool_fingerprint") != tool_fingerprint()
        ):
            raw = {
                "schema": _SCHEMA,
                "tool_fingerprint": tool_fingerprint(),
                "project": {},
                "files": {},
            }
        return raw

    def save(self) -> None:
        try:
            self.path.write_text(json.dumps(self._data, sort_keys=True))
        except OSError:  # pragma: no cover - read-only tree
            pass

    # -- keys -------------------------------------------------------------
    @staticmethod
    def content_hash(source: str) -> str:
        return hashlib.sha256(source.encode()).hexdigest()

    @staticmethod
    def run_key(rule_codes: Sequence[str], strict_pragmas: bool) -> str:
        return ",".join(sorted(rule_codes)) + (":strict" if strict_pragmas else "")

    @staticmethod
    def project_key(
        run_key: str, file_hashes: Sequence[tuple[str, str]]
    ) -> str:
        digest = hashlib.sha256(run_key.encode())
        for rel, fhash in file_hashes:
            digest.update(rel.encode())
            digest.update(fhash.encode())
        return digest.hexdigest()

    # -- project tier ------------------------------------------------------
    def lookup_project(
        self, key: str
    ) -> "Optional[tuple[list[FileReport], list[Violation]]]":
        entry = self._data["project"].get(key)
        if entry is None:
            return None
        reports = [
            FileReport(
                rel_path=r["rel_path"],
                violations=_violations_from_json(r["violations"]),
                suppressed=int(r["suppressed"]),
            )
            for r in entry["reports"]
        ]
        flat = _violations_from_json(entry["violations"])
        self.project_hit = True
        return reports, flat

    def store_project(
        self,
        key: str,
        reports: Sequence[FileReport],
        violations: Sequence[Violation],
    ) -> None:
        # one project entry per store: the previous tree state is
        # superseded, keeping the cache O(tree) instead of O(history)
        self._data["project"] = {
            key: {
                "reports": [
                    {
                        "rel_path": r.rel_path,
                        "violations": _violations_to_json(r.violations),
                        "suppressed": r.suppressed,
                    }
                    for r in reports
                ],
                "violations": _violations_to_json(violations),
            }
        }

    # -- file tier ---------------------------------------------------------
    def lookup_file(
        self, rel_path: str, content_hash: str, run_key: str
    ) -> "Optional[dict]":
        entry = self._data["files"].get(rel_path)
        if (
            entry is None
            or entry.get("hash") != content_hash
            or entry.get("run_key") != run_key
        ):
            self.file_misses += 1
            return None
        self.file_hits += 1
        return {
            "violations": _violations_from_json(entry["violations"]),
            "suppressed": int(entry["suppressed"]),
            "suppressed_lines": [int(x) for x in entry["suppressed_lines"]],
            "used_file_codes": list(entry["used_file_codes"]),
            "file_wide_uses": int(entry["file_wide_uses"]),
        }

    def store_file(
        self,
        rel_path: str,
        content_hash: str,
        run_key: str,
        violations: Sequence[Violation],
        suppressed: int,
        suppressed_lines: Sequence[int],
        used_file_codes: Sequence[str],
        file_wide_uses: int,
    ) -> None:
        self._data["files"][rel_path] = {
            "hash": content_hash,
            "run_key": run_key,
            "violations": _violations_to_json(violations),
            "suppressed": suppressed,
            "suppressed_lines": list(suppressed_lines),
            "used_file_codes": sorted(used_file_codes),
            "file_wide_uses": file_wide_uses,
        }
