"""Flow-aware rules (SIM009–SIM012), built on :mod:`simcheck.dataflow`.

These four rules are the reason simcheck grew a symbol table, a call
graph and a dataflow engine: each one verifies an invariant that
crosses an assignment, a branch or a call boundary, which the
per-node pattern rules (SIM001–SIM008) cannot see.

* **SIM009** — unit inference. A small unit lattice (``ns`` /
  ``bytes`` / ``lines``, joined to unknown) is seeded from name
  suffixes, the ``units.py`` constants and call signatures, then
  propagated through local assignments by the forward solver. Mixed
  additive arithmetic, mixed returns and unit-mismatched call
  arguments are flagged. Supersedes SIM003's float-literal heuristic
  (which stays registered for the drift cases unit names can't see).
* **SIM010** — disarmed-path proof. In the hot-path modules, every
  attribute access *through* a fault/audit hook object must be
  dominated by an ``is not None`` guard on that exact expression —
  the static form of the DESIGN §10/§12 "zero-cost when disarmed"
  contract.
* **SIM011** — exception-flow audit. Call-graph reachability from
  every ``RemoteAccessError`` raise site to the sanctioned recovery
  layer; any intermediate ``except`` that can swallow the error
  (explicit catch, or a broad catch whose try-body may reach a raise
  site) without re-raising is flagged. Interprocedural strengthening
  of SIM008's syntactic swallow check.
* **SIM012** — state-machine conformance. The ``LeaseState`` and
  MESI legality tables are extracted from their defining modules;
  every store of a literal state into a tracked state container must
  be a legal edge from the *proven* source states (dominating guards
  / value bindings), mirroring the runtime sanitizer statically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from simcheck.dataflow import (
    Domain,
    LoopBind,
    analyze,
    apply_refinement,
    dump_key,
)
from simcheck.engine import FileContext, Project, Violation
from simcheck.rules import Rule

__all__ = [
    "SIM009UnitInference",
    "SIM010DisarmedPathProof",
    "SIM011ExceptionFlowAudit",
    "SIM012StateMachineConformance",
]


def _iter_functions(
    tree: ast.AST,
) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_descendants(node: ast.AST) -> Iterator[ast.AST]:
    """Walk *node*'s subtree without entering nested def/class bodies."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


# =======================================================================
# SIM009 — unit inference
# =======================================================================

_NS_CONSTS = frozenset({"NS", "US", "MS", "S"})
_BYTES_CONSTS = frozenset({"KIB", "MIB", "GIB", "CACHE_LINE", "PAGE_SIZE"})
_NS_FUNCS = frozenset({"ns", "us", "ms", "seconds", "bandwidth_time"})
_BYTES_FUNCS = frozenset({"kib", "mib", "gib"})
#: builtins transparent to units: unit(min(a_ns, b_ns)) == ns
_TRANSPARENT_CALLS = frozenset({"min", "max", "abs", "int", "float", "round"})

#: the conversion layer is exempt from intra-file unit arithmetic (it
#: exists to mix units); call-site checks still apply everywhere
_UNIT_LAYER = ("units.py", "model/latency.py")


def unit_of_name(name: Optional[str]) -> Optional[str]:
    """The unit a bare identifier advertises, or None.

    Rate names (``bytes_per_ns``) are dimensionally *not* their
    suffix: strip the suffix and refuse names ending in ``_per``.
    """
    if not name:
        return None
    if name in _NS_CONSTS:
        return "ns"
    if name in _BYTES_CONSTS or name == "nbytes":
        return "bytes"
    if name == "line_count":
        return "lines"
    low = name.lower()
    for suffix, unit in (("_ns", "ns"), ("_bytes", "bytes"), ("_lines", "lines")):
        if low.endswith(suffix):
            stem = low[: -len(suffix)]
            if stem.endswith("_per") or stem == "per":
                return None  # a rate, not the suffix unit
            return unit
    return None


def unit_of_call_name(name: Optional[str]) -> Optional[str]:
    if not name:
        return None
    if name in _NS_FUNCS:
        return "ns"
    if name in _BYTES_FUNCS:
        return "bytes"
    return unit_of_name(name)


_RATE_TOKENS = {
    "ns": "ns",
    "bytes": "bytes",
    "byte": "bytes",
    "b": "bytes",
    "lines": "lines",
    "line": "lines",
}


def rate_of_name(name: Optional[str]) -> Optional[tuple[str, str]]:
    """``(numerator, denominator)`` units of a ``*_X_per_Y``-named
    identifier (``bytes_per_ns``). The config ``*_Bpns`` figures are
    deliberately *not* recognized: ad-hoc division by a raw bandwidth
    figure is exactly what ``units.bandwidth_time`` exists to replace,
    and blessing it in the linter would keep the pattern alive.
    """
    if not name:
        return None
    low = name.lower()
    head, sep, tail = low.rpartition("_per_")
    if sep:
        num = _RATE_TOKENS.get(head.rpartition("_")[2])
        den = _RATE_TOKENS.get(tail)
        if num and den:
            return num, den
    return None


def _rate_of_expr(expr: ast.expr) -> Optional[tuple[str, str]]:
    if isinstance(expr, ast.Name):
        return rate_of_name(expr.id)
    if isinstance(expr, ast.Attribute):
        return rate_of_name(expr.attr)
    return None


def join_units(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Lattice join: agreeing units survive, anything else is unknown."""
    return a if a == b else None


class UnitDomain(Domain):
    """Forward propagation of inferred units through local names."""

    def initial(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> dict:
        state: dict[str, str] = {}
        for arg in list(fn.args.posonlyargs) + list(fn.args.args) + list(
            fn.args.kwonlyargs
        ):
            unit = unit_of_name(arg.arg)
            if unit:
                state[arg.arg] = unit
        return state

    def copy(self, state: dict) -> dict:
        return dict(state)

    def join(self, a: dict, b: dict) -> dict:
        return {k: a[k] for k in a.keys() & b.keys() if a[k] == b[k]}

    def transfer(self, state: dict, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            self._assign(state, stmt.targets[0], stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(state, stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                # target op= value keeps the target's unit when it has
                # one; a mixed-unit fold is reported by the rule's walk
                if stmt.target.id not in state:
                    unit = unit_of_name(stmt.target.id)
                    if unit:
                        state[stmt.target.id] = unit
        elif isinstance(stmt, LoopBind):
            for name in self._bound_names(stmt.target):
                state.pop(name, None)

    def _assign(self, state: dict, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            declared = unit_of_name(target.id)
            inferred = infer_unit(value, state)
            unit = declared or inferred
            if unit:
                state[target.id] = unit
            else:
                state.pop(target.id, None)
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    state.pop(elt.id, None)

    @staticmethod
    def _bound_names(target: ast.expr) -> list[str]:
        out = []
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                out.append(node.id)
        return out


def infer_unit(expr: ast.expr, state: dict) -> Optional[str]:
    """Infer *expr*'s unit under *state* (no violation reporting)."""
    if isinstance(expr, ast.Name):
        return unit_of_name(expr.id) or state.get(expr.id)
    if isinstance(expr, ast.Attribute):
        return unit_of_name(expr.attr)
    if isinstance(expr, ast.Call):
        func = expr.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in _TRANSPARENT_CALLS:
            for arg in expr.args:
                unit = infer_unit(arg, state)
                if unit:
                    return unit
            return None
        return unit_of_call_name(name)
    if isinstance(expr, ast.UnaryOp) and isinstance(
        expr.op, (ast.USub, ast.UAdd)
    ):
        return infer_unit(expr.operand, state)
    if isinstance(expr, ast.IfExp):
        return join_units(
            infer_unit(expr.body, state), infer_unit(expr.orelse, state)
        )
    if isinstance(expr, ast.BinOp):
        left = infer_unit(expr.left, state)
        right = infer_unit(expr.right, state)
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            return left if left == right else (left or right)
        if isinstance(expr.op, ast.Mult):
            if left and right:
                return None  # unit * unit: not representable here
            return left or right
        if isinstance(expr.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            if isinstance(expr.op, ast.Div):
                rate = _rate_of_expr(expr.right)
                if rate is not None:
                    num, den = rate
                    # bytes / (bytes per ns) = ns; unknown / rate = den
                    return den if left in (num, None) else None
            if left and right:
                return None  # ratio (or rate): dimensionless for us
            return left  # unit / scalar keeps the unit
    return None


class SIM009UnitInference(Rule):
    """Unit discipline, inferred instead of asserted.

    A unit lattice (``ns``/``bytes``/``lines``) is seeded from name
    suffixes (``*_ns``, ``*_bytes``, ``*_lines``; rate names like
    ``bytes_per_ns`` are exempt), the ``units.py`` constants
    (``US``/``MIB``/``CACHE_LINE``/...), and call signatures, then
    propagated through local assignments with the dataflow engine.
    Flagged: additive arithmetic and ordering comparisons over
    *different* known units, returns that contradict the function
    name's unit, assignments that contradict the target name's unit,
    and call arguments whose inferred unit contradicts the parameter
    name in every resolvable callee. The conversion layer
    (``units.py``, ``model/latency.py``) is exempt from the intra-file
    checks — mixing units is its job.
    """

    code = "SIM009"
    title = "mixed-unit arithmetic/return/argument (ns vs bytes vs lines)"

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_module(*_UNIT_LAYER):
            return
        domain = UnitDomain()
        for fn in _iter_functions(ctx.tree):
            analysis = analyze(fn, domain)
            fn_unit = unit_of_call_name(fn.name)
            for stmt, state in analysis.statement_states():
                yield from self._check_stmt(ctx, fn, fn_unit, stmt, state)

    def _check_stmt(
        self,
        ctx: FileContext,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        fn_unit: Optional[str],
        stmt: ast.stmt,
        state: dict,
    ) -> Iterator[Violation]:
        for expr in self._stmt_exprs(stmt):
            yield from self._check_expr(ctx, expr, state)
        if isinstance(stmt, ast.Return) and stmt.value is not None and fn_unit:
            got = infer_unit(stmt.value, state)
            if got and got != fn_unit:
                yield ctx.violation(
                    stmt,
                    self.code,
                    f"'{fn.name}' advertises {fn_unit} but returns a "
                    f"{got} value — rename the function or convert the "
                    "result",
                )
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            yield from self._check_assign(ctx, stmt.targets[0], stmt.value, state)
        elif isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.op, (ast.Add, ast.Sub)
        ):
            declared = infer_unit(stmt.target, state)
            got = infer_unit(stmt.value, state)
            if declared and got and declared != got:
                yield ctx.violation(
                    stmt,
                    self.code,
                    f"{got} value folded into a {declared} accumulator",
                )

    def _check_assign(
        self, ctx: FileContext, target: ast.expr, value: ast.expr, state: dict
    ) -> Iterator[Violation]:
        declared = None
        if isinstance(target, ast.Name):
            declared = unit_of_name(target.id)
        elif isinstance(target, ast.Attribute):
            declared = unit_of_name(target.attr)
        if declared is None:
            return
        got = infer_unit(value, state)
        if got and got != declared:
            name = target.id if isinstance(target, ast.Name) else target.attr
            yield ctx.violation(
                target,
                self.code,
                f"'{name}' is named as {declared} but is assigned a "
                f"{got} value",
            )

    @staticmethod
    def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
        from simcheck.dataflow import iter_expressions

        if isinstance(stmt, LoopBind):
            return
        yield from iter_expressions(stmt)

    def _check_expr(
        self, ctx: FileContext, expr: ast.expr, state: dict
    ) -> Iterator[Violation]:
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.Add, ast.Sub)
        ):
            left = infer_unit(expr.left, state)
            right = infer_unit(expr.right, state)
            if left and right and left != right:
                op = "+" if isinstance(expr.op, ast.Add) else "-"
                yield ctx.violation(
                    expr,
                    self.code,
                    f"mixed-unit arithmetic: {left} {op} {right}",
                )
        elif isinstance(expr, ast.Compare) and len(expr.ops) == 1 and isinstance(
            expr.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
        ):
            left = infer_unit(expr.left, state)
            right = infer_unit(expr.comparators[0], state)
            if left and right and left != right:
                yield ctx.violation(
                    expr,
                    self.code,
                    f"mixed-unit comparison: {left} vs {right}",
                )

    # -- cross-boundary argument check -----------------------------------
    def finalize(self, project: Project) -> Iterator[Violation]:
        graph = project.callgraph
        symbols = project.symbols
        by_path = {ctx.rel_path: ctx for ctx in project.files}
        for site in graph.sites:
            caller = symbols.functions[site.caller]
            ctx = by_path.get(caller.rel_path)
            if ctx is None or ctx.in_module(*_UNIT_LAYER):
                continue
            candidates = [
                symbols.functions[q]
                for q in site.candidates
                if q in symbols.functions
            ]
            if not candidates:
                continue
            yield from self._check_site(ctx, site.node, candidates)

    def _check_site(
        self,
        ctx: FileContext,
        call: ast.Call,
        candidates: Sequence,
    ) -> Iterator[Violation]:
        if any(isinstance(a, ast.Starred) for a in call.args):
            return
        for index, arg in enumerate(call.args):
            got = infer_unit(arg, {})
            if not got:
                continue
            verdicts = []
            for info in candidates:
                params = info.call_params
                if index >= len(params):
                    verdicts = []
                    break
                want = unit_of_name(params[index])
                verdicts.append((want, params[index]))
            if not verdicts:
                continue
            wants = {w for w, _ in verdicts}
            if len(wants) == 1:
                want, pname = verdicts[0]
                if want and want != got:
                    yield ctx.violation(
                        arg,
                        self.code,
                        f"argument {index + 1} of '{candidates[0].name}' "
                        f"is '{pname}' ({want}) but a {got} value is "
                        "passed",
                    )
        for kw in call.keywords:
            if kw.arg is None:
                continue
            want = unit_of_name(kw.arg)
            if not want:
                continue
            got = infer_unit(kw.value, {})
            if got and got != want:
                yield ctx.violation(
                    kw.value,
                    self.code,
                    f"keyword '{kw.arg}' expects {want} but a {got} "
                    "value is passed",
                )


# =======================================================================
# SIM010 — disarmed-path proof
# =======================================================================

#: hook attributes whose *use* (attribute access through them) must be
#: dominated by an ``is not None`` guard in hot-path modules
_HOOK_ATTRS = frozenset(
    {"_faults", "audit", "health", "_fence", "_lease_epochs"}
)
_HOT_DIRS = frozenset({"ht", "noc", "rmc", "mem"})
_HOT_FILES = ("sim/engine.py", "sim/equeue.py")


def _is_hot_path(rel_path: str) -> bool:
    parts = rel_path.split("/")
    if any(p in _HOT_DIRS for p in parts[:-1]):
        return True
    return any(rel_path.endswith(f) for f in _HOT_FILES)


class NonNoneDomain(Domain):
    """Which hook expressions are proven non-None here.

    State is the set of :func:`~simcheck.dataflow.dump_key` keys known
    non-None; joins intersect (a fact must hold on *every* path),
    assignments kill (re-binding voids the proof), and branch atoms
    (`x is not None`, truthiness) generate facts on the refined edge.
    """

    def initial(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> set:
        return set()

    def copy(self, state: set) -> set:
        return set(state)

    def join(self, a: set, b: set) -> set:
        return a & b

    def transfer(self, state: set, stmt: ast.stmt) -> None:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, LoopBind):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, (ast.Name, ast.Attribute, ast.Subscript)):
                    key = dump_key(node)
                    if key is None:
                        continue
                    state.difference_update(
                        {
                            k
                            for k in state
                            if k == key
                            or k.startswith(key + ".")
                            or k.startswith(key + "[")
                        }
                    )

    def refine_atom(self, state: set, expr: ast.expr, positive: bool) -> None:
        if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
            op = expr.ops[0]
            left, right = expr.left, expr.comparators[0]
            if isinstance(right, ast.Constant) and right.value is None:
                subject = left
            elif isinstance(left, ast.Constant) and left.value is None:
                subject = right
            else:
                return
            key = dump_key(subject)
            if key is None:
                return
            is_none = isinstance(op, (ast.Is, ast.Eq))
            if is_none == positive:
                state.discard(key)  # proven None here
            else:
                state.add(key)
            return
        # truthiness of a bare chain: `if self._faults:` implies non-None
        if isinstance(expr, (ast.Name, ast.Attribute)):
            key = dump_key(expr)
            if key is not None:
                if positive:
                    state.add(key)
                else:
                    state.discard(key)


class SIM010DisarmedPathProof(Rule):
    """Zero-cost-when-disarmed, as a theorem instead of a diff.

    In the hot-path modules (``ht/``, ``noc/``, ``rmc/``, ``mem/``,
    ``sim/engine.py``, ``sim/equeue.py``), the fault/audit/health hook
    objects are ``None`` until armed (DESIGN §10/§12). Every attribute
    access *through* such a hook (``self._faults.scrub(...)``,
    ``self.sim.audit.record(...)``) must be dominated by an
    ``is not None`` guard on the identical expression, with no
    re-binding in between — checked by forward dataflow with branch
    refinement, which handles the repo's short-circuit idioms
    (``h is not None and h.f(...)``, ``h is None or not h.f(...)``).
    The dual obligation is checked too: hot-path constructors must
    *disarm* the hooks (``self._faults = None``) — arming is the fault
    layer's job (SIM007), and a hook armed at construction makes the
    "disarmed" configuration untestable. Tests are exempt (they arm
    hooks through fixtures).
    """

    code = "SIM010"
    title = "hot-path hook use not dominated by an `is not None` guard"

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_test or not _is_hot_path(ctx.rel_path):
            return
        yield from self._check_constructors(ctx)
        domain = NonNoneDomain()
        for fn in _iter_functions(ctx.tree):
            analysis = analyze(fn, domain)
            for stmt, state in analysis.statement_states():
                if isinstance(stmt, LoopBind):
                    continue
                for root in ast.iter_child_nodes(stmt):
                    if isinstance(root, ast.expr):
                        yield from self._scan(ctx, domain, root, state)

    def _check_constructors(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            init = next(
                (
                    s
                    for s in node.body
                    if isinstance(s, ast.FunctionDef) and s.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            for stmt in _own_descendants(init):
                target = value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    target, value = stmt.target, stmt.value
                if (
                    target is None
                    or not isinstance(target, ast.Attribute)
                    or target.attr not in _HOOK_ATTRS
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                if not (
                    isinstance(value, ast.Constant) and value.value is None
                ):
                    yield ctx.violation(
                        target,
                        self.code,
                        f"hot-path hook 'self.{target.attr}' is not "
                        "disarmed at construction (initialize to None; "
                        "arming is the fault layer's job)",
                    )

    def _scan(
        self, ctx: FileContext, domain: NonNoneDomain, expr: ast.expr, state: set
    ) -> Iterator[Violation]:
        if isinstance(expr, ast.BoolOp):
            branch_state = domain.copy(state)
            assume = isinstance(expr.op, ast.And)
            for value in expr.values:
                yield from self._scan(ctx, domain, value, branch_state)
                apply_refinement(domain, branch_state, value, assume)
            return
        if isinstance(expr, ast.IfExp):
            yield from self._scan(ctx, domain, expr.test, state)
            then_state = domain.copy(state)
            apply_refinement(domain, then_state, expr.test, True)
            yield from self._scan(ctx, domain, expr.body, then_state)
            else_state = domain.copy(state)
            apply_refinement(domain, else_state, expr.test, False)
            yield from self._scan(ctx, domain, expr.orelse, else_state)
            return
        if isinstance(expr, (ast.Lambda,)):
            return
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            hook = expr.value
            if isinstance(hook, ast.Attribute) and hook.attr in _HOOK_ATTRS:
                key = dump_key(hook)
                if key is not None and key not in state:
                    yield ctx.violation(
                        expr,
                        self.code,
                        f"'{key}' used without a dominating "
                        "'is not None' guard — the disarmed hot path "
                        "must stay zero-cost (DESIGN §10/§12)",
                    )
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                yield from self._scan(ctx, domain, child, state)


# =======================================================================
# SIM011 — exception-flow audit
# =======================================================================

_FAILURE_ERRORS = ("RemoteAccessError", "RecoveryError")
_SANCTIONED_HANDLERS = (
    "cluster/health.py",
    "cluster/rebalance.py",
    "cluster/regions.py",
)
_BROAD_CATCHES = frozenset({"Exception", "BaseException"})


class SIM011ExceptionFlowAudit(Rule):
    """``RemoteAccessError`` propagates untouched to the recovery layer.

    From every raise site of a failure error in production code, the
    conservative may-call graph computes which functions' execution
    can surface it. Outside the sanctioned handler modules
    (``cluster/health.py``, ``cluster/rebalance.py``,
    ``cluster/regions.py``), an ``except`` clause that catches the
    error — by name, or broadly via ``Exception``/``BaseException``
    when its try-body can reach a raise site — and does not re-raise,
    swallows a machine-check-style failure mid-flight. SIM008 catches
    the empty-``pass`` spelling syntactically; this rule follows the
    call graph. Tests are exempt (they catch to assert on the
    structured fields).
    """

    code = "SIM011"
    title = "except clause can swallow RemoteAccessError before the recovery layer"

    def finalize(self, project: Project) -> Iterator[Violation]:
        symbols = project.symbols
        graph = project.callgraph
        raisers = {
            qual: node
            for qual, node in graph.functions_raising(
                *_FAILURE_ERRORS
            ).items()
            if not symbols.functions[qual].is_test_file
        }
        if not raisers:
            return
        reach = graph.can_reach(raisers)
        by_path = {ctx.rel_path: ctx for ctx in project.files}
        for info in symbols.functions.values():
            if info.is_test_file or info.rel_path.endswith(
                _SANCTIONED_HANDLERS
            ):
                continue
            ctx = by_path.get(info.rel_path)
            if ctx is None:
                continue
            for node in _own_descendants(info.node):
                if isinstance(node, ast.Try):
                    yield from self._check_try(ctx, graph, node, reach, raisers)

    def _check_try(
        self,
        ctx: FileContext,
        graph,
        stmt: ast.Try,
        reach: set,
        raisers: dict,
    ) -> Iterator[Violation]:
        risky = self._risky_call(graph, stmt, reach)
        for handler in stmt.handlers:
            caught = _caught_names(handler.type)
            explicit = caught & set(_FAILURE_ERRORS)
            broad = caught & _BROAD_CATCHES
            if not (explicit or broad):
                continue
            if any(isinstance(n, ast.Raise) for n in handler.body):
                # an *unconditional* top-level re-raise keeps the
                # failure loud; a raise buried under a condition can
                # still swallow it on the other branch
                continue
            if risky is None:
                continue  # no path from this try-body to a raise site
            error = sorted(explicit)[0] if explicit else "RemoteAccessError"
            how = (
                f"catches {sorted(caught)[0]}"
                if broad and not explicit
                else f"catches {error}"
            )
            yield ctx.violation(
                handler,
                self.code,
                f"{how} without re-raising, and the try-body can reach "
                f"a {error} raise site (e.g. via '{risky}') — only "
                "cluster/{health,rebalance,regions}.py may consume "
                "remote-failure errors",
            )

    def _risky_call(
        self, graph, stmt: ast.Try, reach: set
    ) -> Optional[str]:
        """Name of the first call (or raise) in the try-body that can
        surface a failure error, or None."""
        for node in stmt.body:
            for sub in [node, *_own_descendants(node)]:
                if isinstance(sub, ast.Raise) and sub.exc is not None:
                    exc = sub.exc
                    if isinstance(exc, ast.Call):
                        exc = exc.func
                    name = getattr(exc, "attr", None) or getattr(
                        exc, "id", None
                    )
                    if name in _FAILURE_ERRORS:
                        return f"raise {name}"
        by_node = {id(s.node): s for s in graph.sites}
        for node in stmt.body:
            for sub in [node, *_own_descendants(node)]:
                if not isinstance(sub, ast.Call):
                    continue
                # stepping a generator (the engine's process trampoline)
                # surfaces whatever the coroutine raised — any raiser in
                # the project may arrive here, invisibly to a name-based
                # call graph
                func = sub.func
                if (
                    isinstance(func, ast.Name) and func.id == "next"
                ) or (
                    isinstance(func, ast.Attribute) and func.attr == "throw"
                ):
                    return f"generator step '{ast.unparse(func)}'"
                site = by_node.get(id(sub))
                if site is None:
                    continue
                if any(c in reach for c in site.candidates):
                    return site.callee_name
        return None


def _caught_names(type_node: "ast.expr | None") -> set:
    if type_node is None:
        return set()
    if isinstance(type_node, ast.Tuple):
        names: set[str] = set()
        for elt in type_node.elts:
            names |= _caught_names(elt)
        return names
    if isinstance(type_node, ast.Attribute):
        return {type_node.attr}
    if isinstance(type_node, ast.Name):
        return {type_node.id}
    return set()


# =======================================================================
# SIM012 — state-machine conformance
# =======================================================================


class StateTable:
    """One extracted transition table (flat or event-keyed)."""

    def __init__(self, enum_name: str) -> None:
        self.enum_name = enum_name
        self.members: set[str] = set()
        #: flat edges (old, new); empty for event-keyed tables
        self.edges: set[tuple[str, str]] = set()
        #: event name -> set of (old, new) edges
        self.events: dict[str, set[tuple[str, str]]] = {}

    def scoped_edges(self, fn_name: str) -> set:
        if not self.events:
            return self.edges
        low = fn_name.lower()
        scoped = {
            event: edges
            for event, edges in self.events.items()
            if event.rsplit("_", 1)[-1] in low
        }
        chosen = scoped or self.events
        out: set[tuple[str, str]] = set()
        for edges in chosen.values():
            out |= edges
        return out


def _enum_ref(
    node: ast.AST, aliases: dict
) -> Optional[tuple[str, str]]:
    """``(EnumName, MEMBER)`` for an ``Enum.MEMBER`` reference, with
    module-level aliases (``_S = MESIState``) resolved."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        base = aliases.get(node.value.id, node.value.id)
        return base, node.attr
    return None


def _member_refs(node: ast.AST, aliases: dict) -> list:
    """Every enum-member reference in a tuple/list/set/frozenset()."""
    if isinstance(node, ast.Call):
        name = node.func.id if isinstance(node.func, ast.Name) else None
        if name in ("frozenset", "set", "tuple", "list") and node.args:
            return _member_refs(node.args[0], aliases)
        return []
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out = []
        for elt in node.elts:
            ref = _enum_ref(elt, aliases)
            if ref is not None:
                out.append(ref)
        return out
    ref = _enum_ref(node, aliases)
    return [ref] if ref is not None else []


class EnumStateDomain(Domain):
    """Possible current states per tracked expression.

    State is ``(values, aliases)``: ``values`` maps a structural key
    (a variable, or a container subscript like ``sharers[i]``) to the
    set of members it may currently hold; ``aliases`` remembers that a
    variable was bound from a container entry (``st`` from
    ``sharers.items()``, ``state = sharers.get(cache_idx, ...)``), so
    a later store to that entry can consult the variable's refined
    set. Joins union the possible sets and drop disagreeing aliases.
    """

    def __init__(self, tables: dict, aliases: dict) -> None:
        self.tables = tables
        self.module_aliases = aliases

    def initial(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> tuple:
        return ({}, {})

    def copy(self, state: tuple) -> tuple:
        values, aliases = state
        return (
            {k: set(v) for k, v in values.items()},
            dict(aliases),
        )

    def join(self, a: tuple, b: tuple) -> tuple:
        values_a, aliases_a = a
        values_b, aliases_b = b
        values = {
            k: values_a[k] | values_b[k]
            for k in values_a.keys() & values_b.keys()
        }
        aliases = {
            k: aliases_a[k]
            for k in aliases_a.keys() & aliases_b.keys()
            if aliases_a[k] == aliases_b[k]
        }
        return (values, aliases)

    def equal(self, a: tuple, b: tuple) -> bool:
        return a == b

    # -- transfer ---------------------------------------------------------
    def transfer(self, state: tuple, stmt: ast.stmt) -> None:
        values, aliases = state
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            self._assign(values, aliases, stmt.targets[0], stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(values, aliases, stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            key = dump_key(stmt.target)
            if key is not None:
                values.pop(key, None)
                aliases.pop(key, None)
        elif isinstance(stmt, LoopBind):
            self._loop_bind(values, aliases, stmt)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                key = dump_key(target)
                if key is not None:
                    values.pop(key, None)

    def _assign(
        self,
        values: dict,
        aliases: dict,
        target: ast.expr,
        value: ast.expr,
    ) -> None:
        key = dump_key(target)
        if key is None:
            if isinstance(target, ast.Tuple):
                for elt in target.elts:
                    k = dump_key(elt)
                    if k is not None:
                        values.pop(k, None)
                        aliases.pop(k, None)
            return
        ref = _enum_ref(value, self.module_aliases)
        if ref is not None and ref[0] in self.tables:
            values[key] = {ref[1]}
            aliases.pop(key, None)
            return
        container_key = self._container_load_key(value)
        if container_key is not None and isinstance(target, ast.Name):
            aliases[key] = container_key
            if container_key in values:
                values[key] = set(values[container_key])
            else:
                values.pop(key, None)
            return
        values.pop(key, None)
        aliases.pop(key, None)

    @staticmethod
    def _container_load_key(value: ast.expr) -> Optional[str]:
        """Key of the entry a load expression reads: ``c[k]`` or
        ``c.get(k, ...)``."""
        if isinstance(value, ast.Subscript):
            return dump_key(value)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
            and value.args
        ):
            base = dump_key(value.func.value)
            index = dump_key(value.args[0])
            if base is not None and index is not None:
                return f"{base}[{index}]"
        return None

    def _loop_bind(
        self, values: dict, aliases: dict, stmt: LoopBind
    ) -> None:
        target, source = stmt.target, stmt.iter
        # unwrap list(...)/sorted(...) around .items()
        while (
            isinstance(source, ast.Call)
            and isinstance(source.func, ast.Name)
            and source.func.id in ("list", "sorted", "tuple")
            and source.args
        ):
            source = source.args[0]
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                values.pop(node.id, None)
                aliases.pop(node.id, None)
        if (
            isinstance(source, ast.Call)
            and isinstance(source.func, ast.Attribute)
            and source.func.attr == "items"
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and all(isinstance(e, ast.Name) for e in target.elts)
        ):
            container = dump_key(source.func.value)
            key_var, value_var = target.elts
            if container is not None:
                aliases[value_var.id] = f"{container}[{key_var.id}]"

    # -- refinement -------------------------------------------------------
    def refine_atom(self, state: tuple, expr: ast.expr, positive: bool) -> None:
        if not isinstance(expr, ast.Compare) or len(expr.ops) != 1:
            return
        values, _aliases = state
        op = expr.ops[0]
        subject = dump_key(expr.left)
        if subject is None:
            return
        comparator = expr.comparators[0]
        if isinstance(op, (ast.Is, ast.Eq, ast.IsNot, ast.NotEq)):
            ref = _enum_ref(comparator, self.module_aliases)
            if ref is None or ref[0] not in self.tables:
                return
            members = self.tables[ref[0]].members
            equal = isinstance(op, (ast.Is, ast.Eq)) is positive
            current = values.get(subject, set(members))
            if equal:
                values[subject] = current & {ref[1]}
            else:
                values[subject] = current - {ref[1]}
        elif isinstance(op, (ast.In, ast.NotIn)):
            refs = _member_refs(comparator, self.module_aliases)
            if not refs or refs[0][0] not in self.tables:
                return
            members = self.tables[refs[0][0]].members
            wanted = {m for _, m in refs}
            inside = isinstance(op, ast.In) is positive
            current = values.get(subject, set(members))
            values[subject] = (
                current & wanted if inside else current - wanted
            )


class SIM012StateMachineConformance(Rule):
    """Every literal state store is a legal edge of its machine.

    The lease table (``_TRANSITIONS`` in ``cluster/reservation.py``)
    and the event-keyed MESI table (``_LEGAL_TRANSITIONS`` in
    ``mem/coherence.py``) are extracted from wherever the scan finds
    them. For each store of a literal member into a tracked container
    (``self.lease_states[start] = LeaseState.X``,
    ``sharers[i] = MESIState.Y``), the dataflow domain computes the
    provable set of source states (from dominating guards like
    ``if st is MESIState.MODIFIED:`` and bindings like
    ``state = sharers.get(cache_idx, ...)``); the store must be a
    legal edge from *every* proven source. MESI edges are scoped to
    the events matching the enclosing function's name (``read`` →
    ``local_read``/``peer_read``). A store whose source state cannot
    be proven at all is flagged too: route it through the checked
    transition helper, or pragma it with the reason the source is
    unprovable. Tests are exempt (they forge illegal states to
    exercise the runtime sanitizer).
    """

    code = "SIM012"
    title = "state store is not a provably legal transition-table edge"

    _TABLE_NAMES = ("_TRANSITIONS", "_LEGAL_TRANSITIONS")

    def finalize(self, project: Project) -> Iterator[Violation]:
        tables: dict[str, StateTable] = {}
        for ctx in project.src_files:
            self._extract_tables(ctx, project, tables)
        if not tables:
            return
        for ctx in project.src_files:
            yield from self._check_file(ctx, project, tables)

    # -- table extraction -------------------------------------------------
    def _extract_tables(
        self, ctx: FileContext, project: Project, tables: dict
    ) -> None:
        aliases = self._module_aliases(ctx, project)
        consts = project.symbols.module_constants.get(ctx.rel_path, {})
        for name in self._TABLE_NAMES:
            value = consts.get(name)
            if not isinstance(value, ast.Dict):
                continue
            self._extract_one(value, aliases, tables)
        # enum member universes from the class bodies, when present
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name in tables:
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                tables[node.name].members.add(target.id)

    def _module_aliases(self, ctx: FileContext, project: Project) -> dict:
        consts = project.symbols.module_constants.get(ctx.rel_path, {})
        return {
            name: value.id
            for name, value in consts.items()
            if isinstance(value, ast.Name)
        }

    def _extract_one(
        self, table: ast.Dict, aliases: dict, tables: dict
    ) -> None:
        for key, value in zip(table.keys, table.values):
            if key is None:
                continue
            key_ref = _enum_ref(key, aliases)
            if key_ref is not None:
                # flat: Enum.OLD -> collection of Enum.NEW
                enum_name, old = key_ref
                entry = tables.setdefault(enum_name, StateTable(enum_name))
                entry.members.add(old)
                for _, new in _member_refs(value, aliases):
                    entry.members.add(new)
                    entry.edges.add((old, new))
            elif isinstance(key, ast.Constant) and isinstance(
                key.value, str
            ) and isinstance(value, ast.Dict):
                # event-keyed: "event" -> {Enum.OLD: {Enum.NEW, ...}}
                event = key.value
                for old_node, new_node in zip(value.keys, value.values):
                    if old_node is None:
                        continue
                    old_ref = _enum_ref(old_node, aliases)
                    if old_ref is None:
                        continue
                    enum_name, old = old_ref
                    entry = tables.setdefault(
                        enum_name, StateTable(enum_name)
                    )
                    entry.members.add(old)
                    edges = entry.events.setdefault(event, set())
                    for _, new in _member_refs(new_node, aliases):
                        entry.members.add(new)
                        edges.add((old, new))

    # -- store checking ---------------------------------------------------
    def _check_file(
        self, ctx: FileContext, project: Project, tables: dict
    ) -> Iterator[Violation]:
        source = ctx.source
        wanted = False
        for table in tables.values():
            if table.enum_name in source:
                wanted = True
        aliases = self._module_aliases(ctx, project)
        for alias, target in aliases.items():
            if target in tables and alias in source:
                wanted = True
        if not wanted:
            return
        domain = EnumStateDomain(tables, aliases)
        for fn in _iter_functions(ctx.tree):
            analysis = analyze(fn, domain)
            for stmt, state in analysis.statement_states():
                yield from self._check_store(
                    ctx, fn, domain, tables, stmt, state
                )

    def _check_store(
        self,
        ctx: FileContext,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        domain: EnumStateDomain,
        tables: dict,
        stmt: ast.stmt,
        state: tuple,
    ) -> Iterator[Violation]:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        ref = _enum_ref(stmt.value, domain.module_aliases)
        if ref is None or ref[0] not in tables:
            return
        enum_name, new = ref
        table = tables[enum_name]
        key = dump_key(target)
        values, aliases = state
        old_set: Optional[set] = None
        if key is not None:
            if key in values:
                old_set = set(values[key])
            else:
                for var, container_key in aliases.items():
                    if container_key == key and var in values:
                        narrowed = set(values[var])
                        old_set = (
                            narrowed
                            if old_set is None
                            else old_set & narrowed
                        )
        edges = table.scoped_edges(fn.name)
        if old_set is None or old_set >= table.members:
            yield ctx.violation(
                target,
                self.code,
                f"store of {enum_name}.{new} with statically unknown "
                "source state — prove the source with a dominating "
                "guard/binding, or route through the checked "
                "transition helper",
            )
            return
        for old in sorted(old_set):
            if (old, new) not in edges:
                yield ctx.violation(
                    target,
                    self.code,
                    f"illegal {enum_name} transition {old} -> {new} "
                    "(not an edge of the extracted transition table "
                    f"for this context)",
                )
