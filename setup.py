"""Setup shim.

All package metadata lives in ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package (where PEP 660 editable
installs are unavailable) can still run ``pip install -e .`` via the
legacy setuptools develop path.
"""

from setuptools import setup

setup()
